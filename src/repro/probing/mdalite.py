"""MDA-Lite: the census-scale multipath strategy.

Vermeulen, Fourmaux, Strowes and Friedman's "Multilevel MDA-Lite Paris
Traceroute" (PAPERS.md) starts from a field observation: at Internet
census scale almost every hop is serial, and the exact MDA's per-hop
cost — n(1) + 1 probes at *every* serial hop, coupon-collector time
plus a full n(k) tail at every diamond — is what keeps full multipath
surveys from scaling.  MDA-Lite trades a bounded miss probability for
a much cheaper budget (see :class:`repro.probing.stopping.LiteStopping`
for the exact rule):

- serial hops are accepted straight from a small *scout* prefix of
  flows (``scout_flows``, default 3) instead of n(1) + 1 probes;
- branching hops stop at n(k) probes *in total* — discoveries count —
  instead of n(k) consecutive misses after the last discovery.

:class:`MdaLiteStrategy` is the exact :class:`~repro.probing.mda
.MdaStrategy` with that rule and the *expected*-remainder speculation
budget installed: the machinery — flow-order replay, hop concurrency,
ip-id/tag disambiguation, TTL-ordered consumption — is shared through
:mod:`repro.probing.stopping`, so everything that runs exact MDA
(`MultipathDetector`, campaigns, fleets, the CLI) runs MDA-Lite by
swapping the strategy class.

When to prefer which: exact MDA for per-hop miss probability bounded
by alpha regardless of topology (verification runs, ground-truth
benches); MDA-Lite when probe budget is the constraint and a small
per-diamond miss rate is acceptable — the census bench
(``benchmarks/test_bench_mda_lite.py``) pins the trade at >= 2x fewer
probes for <= 5% missed links on seeded wide diamonds.
"""

from __future__ import annotations

from typing import Callable, Optional

from repro.errors import TracerError
from repro.probing.mda import MdaHopStrategy, MdaStrategy
from repro.probing.stopping import (
    ExpectedSpeculation,
    LiteStopping,
    SpeculationPolicy,
    StoppingRule,
)

__all__ = ["MdaLiteHopStrategy", "MdaLiteStrategy"]


class MdaLiteStrategy(MdaStrategy):
    """Full multipath trace under the MDA-Lite hop budget.

    Accepts everything :class:`MdaStrategy` does, plus ``scout_flows``
    — the number of adjudicated probes after which a hop still showing
    at most one interface is accepted (the knob trading serial-hop
    cost against the chance of missing a diamond entirely).
    Speculation defaults to the expected stopping-rule remainder
    rather than the worst case, so wide hops keep fewer wasted probes
    in flight while they are still discovering.
    """

    rule_name = "lite"

    def __init__(self, *args, scout_flows: int = 3, **kwargs) -> None:
        if scout_flows < 1:
            raise TracerError("need at least one scout flow")
        self.scout_flows = scout_flows
        super().__init__(*args, **kwargs)

    def _default_speculation(self) -> SpeculationPolicy:
        return ExpectedSpeculation()

    def _make_rule(self) -> StoppingRule:
        return LiteStopping(self.alpha, scout_flows=self.scout_flows)


class MdaLiteHopStrategy(MdaHopStrategy):
    """Single-hop enumeration under the MDA-Lite budget."""

    def __init__(
        self,
        make_builder: Callable[[int], object],
        ttl: int,
        alpha: float = 0.05,
        max_flows_per_hop: int = 128,
        window: int = 1,
        scout_flows: int = 3,
        speculation: Optional[SpeculationPolicy] = None,
    ) -> None:
        if scout_flows < 1:
            raise TracerError("need at least one scout flow")
        super().__init__(
            make_builder, ttl, alpha=alpha,
            max_flows_per_hop=max_flows_per_hop, window=window,
            rule=LiteStopping(alpha, scout_flows=scout_flows),
            speculation=(speculation if speculation is not None
                         else ExpectedSpeculation()),
        )
