"""The paper's hop loop as a sans-I/O strategy.

:class:`HopLoopStrategy` is the one and only implementation of hop
adjudication in the codebase: the star budget, the destination /
unreachable halt rules, and strict TTL-order adjudication all live
here.  :meth:`repro.tracer.base.Traceroute.trace` runs it with
``window=1`` on the blocking socket (reproducing the paper's
stop-and-wait loop, timing included); the event scheduler runs it with
a wider window, where out-of-order arrivals park in their slots until
adjudication catches up.

Two pacing controls bound speculative probing under a window:

- **horizon hints** — a remembered halt TTL (the scheduler passes the
  previous trace's depth).  Sends pause at the hinted depth and resume
  only if adjudication gets there without halting, so steady-state
  repeat traces send almost no probe the sequential loop would not
  have sent.
- **evidence caps** — as soon as *any* reply (in or out of order) is a
  halt kind (destination reached, unreachable), deeper sends stop; the
  final halt TTL can only be at or before that reply's TTL.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Optional

from repro.errors import TracerError
from repro.net.inet import IPv4Address
from repro.net.packet import Packet
from repro.probing.replies import halt_reason_for, interpret_reply
from repro.probing.strategy import ProbeRequest, ProbeStrategy
from repro.sim.socketapi import ProbeResponse
from repro.tracer.result import Hop, TracerouteResult

if TYPE_CHECKING:  # import cycle: tracer.base runs strategies
    from repro.tracer.base import TracerouteOptions
    from repro.tracer.probes import ProbeBuilder


class _Slot:
    """One sent probe awaiting adjudication."""

    __slots__ = ("token", "probe", "flow_key", "ttl", "reply", "response",
                 "resolved")

    def __init__(self, token: int, probe: Packet, flow_key: bytes,
                 ttl: int) -> None:
        self.token = token
        self.probe = probe
        self.flow_key = flow_key
        self.ttl = ttl
        self.reply = None
        self.response: ProbeResponse | None = None
        self.resolved = False


class HopLoopStrategy(ProbeStrategy):
    """The hop loop: star budget, halt rules, TTL-order adjudication."""

    def __init__(
        self,
        builder: "ProbeBuilder",
        options: "TracerouteOptions",
        tool: str,
        source: IPv4Address,
        destination: IPv4Address | str,
        window: int = 1,
        started_at: float = 0.0,
        horizon_hint: int | None = None,
    ) -> None:
        if window < 1:
            raise TracerError("need a positive in-flight window")
        self.builder = builder
        self.options = options
        self.window = window
        self.destination = IPv4Address(destination)
        self.in_flight = 0
        self._result = TracerouteResult(
            tool=tool,
            source=source,
            destination=self.destination,
            started_at=started_at,
        )
        self._finished = False
        self._slots: dict[int, _Slot] = {}
        self._hops: dict[int, list[_Slot]] = {}
        self._next_token = 0
        self._next_ttl = options.min_ttl
        self._next_index = 0
        self._adjudicated = options.min_ttl - 1
        self._consecutive_stars = 0
        self._halt: Optional[str] = None
        self._evidence_cap: Optional[int] = None
        if horizon_hint is None:
            self._horizon = options.max_ttl
        else:
            self._horizon = min(options.max_ttl,
                                max(options.min_ttl, horizon_hint))

    # -- the protocol ----------------------------------------------------
    def next_probes(self) -> list[ProbeRequest]:
        """Refill the window once it has half drained.

        Waiting for the half-drain keeps sends arriving at the socket
        in window/2-sized cohorts that share forwarding work in the
        simulator's cohort walker, instead of degenerating to one-probe
        walks per resolved response.
        """
        if self._finished or self.in_flight > self.window // 2:
            return []
        batch: list[ProbeRequest] = []
        while self.in_flight < self.window:
            slot = self._build_next()
            if slot is None:
                break
            batch.append(ProbeRequest(token=slot.token, probe=slot.probe,
                                      builder=self.builder))
        return batch

    def on_reply(self, token: int, response: ProbeResponse,
                 now: float) -> None:
        self._resolve(token, response, now)

    def on_timeout(self, token: int, now: float) -> None:
        self._resolve(token, None, now)

    @property
    def finished(self) -> bool:
        return self._finished

    def result(self) -> TracerouteResult:
        return self._result

    # -- sending ---------------------------------------------------------
    def _build_next(self) -> Optional[_Slot]:
        """The next probe slot in strict (TTL, probe index) order."""
        if self._finished:
            return None
        ttl = self._next_ttl
        if ttl > self._horizon:
            return None
        if self._evidence_cap is not None and ttl > self._evidence_cap:
            return None
        probe = self.builder.build(ttl)
        slot = _Slot(self._next_token, probe, self.builder.flow_key(probe),
                     ttl)
        self._next_token += 1
        self._slots[slot.token] = slot
        self._hops.setdefault(ttl, []).append(slot)
        self._next_index += 1
        if self._next_index >= self.options.probes_per_hop:
            self._next_index = 0
            self._next_ttl += 1
        self.in_flight += 1
        return slot

    # -- resolving -------------------------------------------------------
    def _resolve(self, token: int, response: ProbeResponse | None,
                 now: float) -> None:
        """Record a response (or, with None, a timeout) for ``token``."""
        slot = self._slots.get(token)
        if slot is None or slot.resolved:
            return
        slot.resolved = True
        slot.response = response
        slot.reply = interpret_reply(self.builder, slot.probe, response)
        self.in_flight -= 1
        if response is not None and not slot.reply.is_star:
            halt = halt_reason_for(slot.probe, response, slot.reply)
            if halt is not None and (self._evidence_cap is None
                                     or slot.ttl < self._evidence_cap):
                self._evidence_cap = slot.ttl
        self._advance(now)

    # -- adjudication ----------------------------------------------------
    def _advance(self, now: float) -> None:
        """Adjudicate complete hops in TTL order; finalize on a halt."""
        if self._finished:
            return
        opts = self.options
        while self._halt is None:
            ttl = self._adjudicated + 1
            if ttl > opts.max_ttl:
                break
            slots = self._hops.get(ttl)
            if (slots is None or len(slots) < opts.probes_per_hop
                    or any(not slot.resolved for slot in slots)):
                break
            halt = None
            for slot in slots:
                if slot.reply.is_star:
                    self._consecutive_stars += 1
                else:
                    self._consecutive_stars = 0
                halt = halt or halt_reason_for(slot.probe, slot.response,
                                               slot.reply)
            self._adjudicated = ttl
            if halt:
                self._halt = halt
            elif self._consecutive_stars >= opts.max_consecutive_stars:
                self._halt = "stars"
        if self._halt is None and self._adjudicated >= opts.max_ttl:
            self._halt = "max-ttl"
        if self._halt is not None:
            self._finalize(now)
            return
        if (self._adjudicated >= self._horizon
                and self._horizon < opts.max_ttl):
            # Every hinted hop resolved without a halt: probe deeper.
            self._horizon = min(opts.max_ttl, self._horizon + self.window)

    def _finalize(self, now: float) -> None:
        opts = self.options
        hops: list[Hop] = []
        flow_keys: list[bytes] = []
        for ttl in range(opts.min_ttl, self._adjudicated + 1):
            slots = self._hops[ttl]
            hops.append(Hop(ttl=ttl, replies=[s.reply for s in slots]))
            flow_keys.extend(s.flow_key for s in slots)
        self._result.hops = hops
        self._result.flow_keys = flow_keys
        self._result.halt_reason = self._halt or "max-ttl"
        self._result.finished_at = now
        self._finished = True

    @property
    def halt_ttl(self) -> int:
        """The deepest adjudicated TTL (the hint for a repeat trace)."""
        return self._adjudicated
