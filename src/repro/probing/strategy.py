"""The :class:`ProbeStrategy` protocol and its probe-request currency.

A strategy is a pure state machine.  It never sends anything: it emits
:class:`ProbeRequest`s describing the probes it wants in flight, and it
is told — via the token it chose for each request — whether the probe
drew a response or timed out.  Which socket carries the probes, how
responses are demultiplexed, and when timeouts fire are entirely the
driver's business (:func:`repro.probing.executor.run_strategy` for the
blocking socket, :class:`repro.engine.scheduler.ProbeScheduler` for the
event engine).

The contract a strategy must honour:

- :meth:`next_probes` returns the batch of probes to send *now* — it
  may be empty while the strategy waits for outstanding answers, but
  must never be empty forever while :attr:`finished` is False and no
  probe is outstanding (that is a stall, and drivers raise on it);
- every emitted request is answered with at most one :meth:`on_reply`
  or :meth:`on_timeout` carrying the request's token — exactly one
  while the strategy is unfinished, none for requests still pending
  when :attr:`finished` turns True (drivers cancel those, so cleanup
  must not wait on further callbacks); duplicate or unknown tokens
  must be ignored, and replies may arrive in any order — drivers make
  no sequencing promises;
- once :attr:`finished` is True it stays True, further callbacks are
  no-ops, and :meth:`result` returns the strategy's product.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass
from typing import TYPE_CHECKING, Optional

from repro.net.packet import Packet
from repro.sim.socketapi import ProbeResponse

if TYPE_CHECKING:  # import cycle: tracer.base runs strategies
    from repro.tracer.probes import ProbeBuilder


@dataclass
class ProbeRequest:
    """One probe a strategy wants on the wire.

    ``token`` is strategy-chosen and echoed back verbatim in
    :meth:`ProbeStrategy.on_reply` / :meth:`ProbeStrategy.on_timeout`.
    ``builder`` supplies the per-tool response matching
    (:meth:`ProbeBuilder.matches`) the driver uses to attribute
    responses.  ``timeout`` overrides the driver's response deadline;
    None defers to the driver's own policy.
    """

    token: int
    probe: Packet
    builder: "ProbeBuilder"
    timeout: Optional[float] = None


class ProbeStrategy(ABC):
    """Incremental, sans-I/O probing state machine."""

    @abstractmethod
    def next_probes(self) -> list[ProbeRequest]:
        """Probes to put in flight now (may be empty while waiting)."""

    @abstractmethod
    def on_reply(self, token: int, response: ProbeResponse,
                 now: float) -> None:
        """A response attributed to the request carrying ``token``.

        ``now`` is the driver's clock at delivery (the response's
        arrival instant); sans-I/O strategies use it only to timestamp
        results.
        """

    @abstractmethod
    def on_timeout(self, token: int, now: float) -> None:
        """The request carrying ``token`` drew no response in time."""

    @property
    @abstractmethod
    def finished(self) -> bool:
        """True once the algorithm needs no further probes."""

    @abstractmethod
    def result(self):
        """The strategy's product (defined once :attr:`finished`)."""
