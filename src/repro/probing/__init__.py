"""Sans-I/O probing strategies: one probing API for every loop.

A :class:`ProbeStrategy` is an incremental state machine that *decides*
what to probe and what the answers mean, without ever touching a socket
or a clock.  The strategy hands out :class:`ProbeRequest`s from
:meth:`next_probes`, is told what happened through :meth:`on_reply` /
:meth:`on_timeout`, raises :attr:`finished` when its algorithm is done,
and surfaces whatever it inferred through :meth:`result`.

Because the I/O lives elsewhere, the same strategy runs unchanged on
both measurement substrates:

- :func:`repro.probing.executor.run_strategy` drives a strategy over
  the blocking :class:`repro.sim.socketapi.ProbeSocket`, one probe in
  flight — the paper's stop-and-wait regime;
- :class:`repro.engine.scheduler.ProbeScheduler` drives many strategies
  as lanes over the event engine, each with a window of probes in
  flight and out-of-order arrivals.

Three strategy families cover the repository's probing algorithms:

- :class:`HopLoopStrategy` — the paper's hop loop (star budget,
  destination/unreachable halt, strict TTL-order adjudication), the
  *only* implementation of those rules in the codebase;
- :class:`MdaStrategy` / :class:`MdaHopStrategy` — the exact Multipath
  Detection Algorithm's stopping-rule fan-out, with one sub-state per
  hop under enumeration;
- :class:`MdaLiteStrategy` / :class:`MdaLiteHopStrategy` — the same
  machinery under the census-scale MDA-Lite budget.

Both multipath families share the sans-I/O stopping core in
:mod:`repro.probing.stopping` (rules, flow-order replay, speculation
policies), which is exported here for property tests and callers that
compose their own rules.
"""

from repro.probing.executor import run_strategy
from repro.probing.hoploop import HopLoopStrategy
from repro.probing.mda import (
    DISAMBIGUATION_MODES,
    HopDiscovery,
    MdaHopStrategy,
    MdaStrategy,
    MultipathResult,
    probes_needed,
)
from repro.probing.mdalite import MdaLiteHopStrategy, MdaLiteStrategy
from repro.probing.replies import (
    halt_reason_for,
    interpret_reply,
    quoted_identification,
)
from repro.probing.stopping import (
    ExactStopping,
    ExpectedSpeculation,
    FlowLedger,
    LiteStopping,
    SpeculationPolicy,
    StoppingRule,
    WorstCaseSpeculation,
)
from repro.probing.strategy import ProbeRequest, ProbeStrategy
from repro.tracer.base import TracerouteOptions

__all__ = [
    "DISAMBIGUATION_MODES",
    "ExactStopping",
    "ExpectedSpeculation",
    "FlowLedger",
    "HopDiscovery",
    "HopLoopStrategy",
    "LiteStopping",
    "MdaHopStrategy",
    "MdaLiteHopStrategy",
    "MdaLiteStrategy",
    "MdaStrategy",
    "MultipathResult",
    "ProbeRequest",
    "ProbeStrategy",
    "SpeculationPolicy",
    "StoppingRule",
    "TracerouteOptions",
    "WorstCaseSpeculation",
    "halt_reason_for",
    "interpret_reply",
    "probes_needed",
    "quoted_identification",
    "run_strategy",
]
