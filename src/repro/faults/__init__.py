"""Adversarial network faults: seeded pathologies over the simulator.

The paper's claim is that probe/header *design* decides which anomalies
a traceroute observes; the follow-up artifact literature (Viger et al.,
Fontugne et al. — see PAPERS.md) shows that network *pathologies*
manufacture artifacts even for a well-designed tracer.  This package is
the second half: composable, deterministic fault policies layered over
the simulator's delivery path —

- :class:`DeliveryFaultPlane` — in-flight jitter (reordering), delay
  spikes, and response duplication, attached at
  :attr:`repro.sim.network.Network.fault_plane`;
- :class:`NetworkFaultProfile` + :func:`install_fault_profile` — the
  picklable bundle that also turns on router-side token-bucket ICMP
  rate limiting and correlated loss bursts
  (:class:`repro.sim.faults.FaultProfile` fields), attachable
  per-router or network-wide, including through
  ``InternetConfig(fault_profile=...)``;
- :func:`make_fault_profile` / :data:`FAULT_PROFILE_NAMES` — the named
  profiles the attribution pipeline and benchmarks sweep over;
- :class:`ScheduledProfile` — timed profile *phases* swapped on the
  simulated clock (diurnal rate-limit intensity and friends), the
  time-varying pressure the monitor service probes through, travelling
  as ``InternetConfig(fault_phases=...)``.

All randomness is keyed per probing client / per recipient, so fault
timelines are independent across vantage points and sharded fleet runs
stay byte-identical to single-process ones (the PR 3 guarantee, now
with faults on).
"""

from repro.faults.plane import DeliveryFaultPlane
from repro.faults.profile import (
    FaultInstallation,
    NetworkFaultProfile,
    install_fault_profile,
)
from repro.faults.profiles import FAULT_PROFILE_NAMES, make_fault_profile
from repro.faults.schedule import ScheduledProfile, diurnal_rate_limit_phases

__all__ = [
    "DeliveryFaultPlane",
    "FaultInstallation",
    "NetworkFaultProfile",
    "ScheduledProfile",
    "diurnal_rate_limit_phases",
    "install_fault_profile",
    "make_fault_profile",
    "FAULT_PROFILE_NAMES",
]
