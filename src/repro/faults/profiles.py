"""The named fault profiles the robustness studies sweep over.

Each profile isolates one pathology family from the traceroute-artifact
literature (Viger et al., "Detection, Understanding, and Prevention of
Traceroute Measurement Artifacts"); ``adversarial`` combines them all
at milder intensities.  Magnitudes are chosen against this simulator's
scales — link delays around a millisecond, the paper's 2-second wait —
so each profile visibly perturbs a campaign without drowning it:

- ``reordering`` — 40 ms of per-response jitter (an order of magnitude
  above the RTT spread, so windows of in-flight probes resolve out of
  order) plus an 8 % heavy tail of 2.5-second spikes that cross the
  flat wait and star hops the routers actually answered.
- ``rate-limit`` — every router paces ICMP generation with a
  one-per-second token bucket of capacity 4: a pipelined window
  bursting through one box gets four answers and then silence.
- ``duplication`` — one response in five arrives twice.
- ``loss-bursts`` — 6 % of responses open a correlated loss burst that
  swallows about five follow-ups (a Gilbert-Elliott channel per
  router and probing client).
- ``adversarial`` — all four, gentler, for worst-case soak runs.
"""

from __future__ import annotations

from repro.errors import TopologyError
from repro.faults.profile import NetworkFaultProfile

#: The sweep order reports and the CLI use.
FAULT_PROFILE_NAMES = (
    "reordering",
    "rate-limit",
    "duplication",
    "loss-bursts",
    "adversarial",
)


def make_fault_profile(name: str, seed: int = 0) -> NetworkFaultProfile:
    """Build one named profile, seeded for deterministic replay."""
    if name == "reordering":
        return NetworkFaultProfile(
            name=name, seed=seed,
            jitter=0.04, spike_rate=0.08, spike_delay=2.5,
        )
    if name == "rate-limit":
        return NetworkFaultProfile(
            name=name, seed=seed,
            rate_limit=1.0, rate_limit_burst=4,
            rate_limit_exhausted="drop",
        )
    if name == "duplication":
        return NetworkFaultProfile(
            name=name, seed=seed,
            duplication=0.2, duplication_lag=0.003,
        )
    if name == "loss-bursts":
        return NetworkFaultProfile(
            name=name, seed=seed,
            loss_burst_start=0.06, loss_burst_length=5.0,
        )
    if name == "adversarial":
        return NetworkFaultProfile(
            name=name, seed=seed,
            jitter=0.02, spike_rate=0.04, spike_delay=2.5,
            duplication=0.08, duplication_lag=0.003,
            rate_limit=2.0, rate_limit_burst=6,
            rate_limit_exhausted="drop",
            loss_burst_start=0.03, loss_burst_length=4.0,
        )
    raise TopologyError(
        f"unknown fault profile {name!r}; "
        f"choose from {FAULT_PROFILE_NAMES}")
