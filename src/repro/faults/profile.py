"""Composable network-fault profiles and their installer.

:class:`NetworkFaultProfile` is the single, picklable description of an
adversarial network condition — which in-flight faults the delivery
plane applies (jitter, spikes, duplication) and which generation faults
every scoped router exhibits (ICMP token-bucket rate limiting,
correlated loss bursts).  It travels inside
:class:`repro.topology.internet.InternetConfig` (``fault_profile``
field), so sharded fleet executions rebuild identical fault worlds on
every topology replica, and it is what the attribution pipeline
(:mod:`repro.analysis.fault_sensitivity`) sweeps over.

:func:`install_fault_profile` attaches a profile to a built network:
a :class:`repro.faults.plane.DeliveryFaultPlane` goes on
:attr:`repro.sim.network.Network.fault_plane` for the in-flight faults,
and each scoped router's :class:`repro.sim.faults.FaultProfile` gains
the generation faults, with burst seeds derived from the profile seed
and the router name so no two routers share a fault calendar.
``routers`` narrows the scope to named routers (per-router attachment);
``protected`` exempts routers that must stay clean — the topology
generator passes the vantage points' access chains, mirroring how it
shields them from sprinkled quirks.
"""

from __future__ import annotations

import zlib
from dataclasses import dataclass, field
from typing import Iterable, Optional

from repro.errors import TopologyError
from repro.faults.plane import DeliveryFaultPlane
from repro.sim.faults import ICMP_EXHAUSTED_MODES
from repro.sim.network import Network
from repro.sim.router import Router


@dataclass
class NetworkFaultProfile:
    """One named adversarial network condition (all faults optional).

    Plain data by design: every field pickles, so a profile crosses
    process boundaries inside an ``InternetConfig`` unchanged.  A field
    left at its default disables that fault.
    """

    name: str = "custom"
    seed: int = 0
    # -- delivery-path faults (the plane) ------------------------------
    #: Max uniform per-response extra delay, seconds (reordering).
    jitter: float = 0.0
    #: Probability a response is held ``spike_delay`` extra seconds —
    #: the heavy tail that crosses the 2-second wait and stars a hop
    #: the router actually answered.
    spike_rate: float = 0.0
    spike_delay: float = 2.5
    #: Probability a response is duplicated in flight.
    duplication: float = 0.0
    duplication_lag: float = 0.002
    # -- router generation faults --------------------------------------
    #: ICMP token-bucket refill rate, responses/second (0 = off).
    rate_limit: float = 0.0
    #: Token-bucket capacity (responses a cold router answers back to
    #: back) — under the pipelined engine's windows this is what turns
    #: rate limiting into *bursty* silence.
    rate_limit_burst: int = 4
    #: ``"drop"`` (silence) or ``"defer"`` (paced, late responses).
    rate_limit_exhausted: str = "drop"
    #: Probability an emitted response opens a correlated loss burst.
    loss_burst_start: float = 0.0
    #: Mean responses swallowed per burst (geometric).
    loss_burst_length: float = 4.0
    # -- scope ----------------------------------------------------------
    #: Router names the profile applies to; None = every router (minus
    #: ``protected`` at install time).  Also narrows the delivery plane
    #: to responses sourced from these routers' interface addresses.
    routers: Optional[tuple[str, ...]] = None

    def __post_init__(self) -> None:
        if self.jitter < 0.0:
            raise TopologyError(f"jitter must be >= 0: {self.jitter}")
        if not 0.0 <= self.spike_rate <= 1.0:
            raise TopologyError(
                f"spike_rate must be in [0,1]: {self.spike_rate}")
        if self.spike_delay < 0.0:
            raise TopologyError(
                f"spike_delay must be >= 0: {self.spike_delay}")
        if not 0.0 <= self.duplication <= 1.0:
            raise TopologyError(
                f"duplication must be in [0,1]: {self.duplication}")
        if self.duplication_lag <= 0.0:
            raise TopologyError(
                f"duplication_lag must be positive: {self.duplication_lag}")
        if self.rate_limit < 0.0:
            raise TopologyError(
                f"rate_limit must be >= 0: {self.rate_limit}")
        if self.rate_limit_burst < 1:
            raise TopologyError(
                f"rate_limit_burst must be >= 1: {self.rate_limit_burst}")
        if self.rate_limit_exhausted not in ICMP_EXHAUSTED_MODES:
            raise TopologyError(
                f"rate_limit_exhausted must be one of "
                f"{ICMP_EXHAUSTED_MODES}: {self.rate_limit_exhausted!r}")
        if not 0.0 <= self.loss_burst_start <= 1.0:
            raise TopologyError(
                f"loss_burst_start must be in [0,1]: {self.loss_burst_start}")
        if self.loss_burst_length < 1.0:
            raise TopologyError(
                f"loss_burst_length must be >= 1: {self.loss_burst_length}")
        if self.routers is not None:
            self.routers = tuple(self.routers)

    @property
    def has_delivery_faults(self) -> bool:
        return (self.jitter > 0.0 or self.spike_rate > 0.0
                or self.duplication > 0.0)

    @property
    def has_router_faults(self) -> bool:
        return self.rate_limit > 0.0 or self.loss_burst_start > 0.0

    @property
    def inert(self) -> bool:
        """True when no fault is enabled (installing is a no-op)."""
        return not (self.has_delivery_faults or self.has_router_faults)

    def describe(self) -> str:
        """A one-line inventory for reports and CLI output."""
        parts = []
        if self.jitter > 0.0:
            parts.append(f"jitter<={self.jitter * 1000:.0f}ms")
        if self.spike_rate > 0.0:
            parts.append(f"spikes {self.spike_rate:.0%}@"
                         f"{self.spike_delay:.1f}s")
        if self.duplication > 0.0:
            parts.append(f"dup {self.duplication:.0%}")
        if self.rate_limit > 0.0:
            parts.append(f"icmp<={self.rate_limit:g}/s burst "
                         f"{self.rate_limit_burst} "
                         f"({self.rate_limit_exhausted})")
        if self.loss_burst_start > 0.0:
            parts.append(f"loss bursts {self.loss_burst_start:.0%}x"
                         f"{self.loss_burst_length:g}")
        scope = "all routers" if self.routers is None \
            else f"{len(self.routers)} router(s)"
        return f"{self.name}: {', '.join(parts) or 'inert'} [{scope}]"


@dataclass
class FaultInstallation:
    """What :func:`install_fault_profile` touched (for reports/tests)."""

    profile: NetworkFaultProfile
    plane: Optional[DeliveryFaultPlane]
    routers: list[str] = field(default_factory=list)


def install_fault_profile(
    network: Network,
    profile: NetworkFaultProfile,
    protected: Iterable[str] = (),
) -> FaultInstallation:
    """Attach ``profile`` to a built network.

    Mutates scoped routers' fault profiles in place (preserving quirks
    a topology already assigned — a zero-TTL forwarder can also be rate
    limited) and installs the delivery plane on the network.  Raises
    :class:`TopologyError` when a named router does not exist or is not
    a router.
    """
    protected = set(protected)
    if profile.routers is None:
        routers = [node for name, node in sorted(network.nodes.items())
                   if isinstance(node, Router) and name not in protected]
    else:
        routers = []
        for name in profile.routers:
            node = network.node(name)
            if not isinstance(node, Router):
                raise TopologyError(
                    f"fault profile scoped to non-router {name!r}")
            if name not in protected:
                routers.append(node)

    if profile.has_router_faults:
        for router in routers:
            faults = router.faults
            if profile.rate_limit > 0.0:
                faults.icmp_rate_limit = profile.rate_limit
                faults.icmp_burst = profile.rate_limit_burst
                faults.icmp_exhausted = profile.rate_limit_exhausted
            if profile.loss_burst_start > 0.0:
                faults.loss_burst_start = profile.loss_burst_start
                faults.loss_burst_length = profile.loss_burst_length
                faults.burst_seed = zlib.crc32(
                    f"{profile.seed}:{router.name}".encode())

    plane = None
    if profile.has_delivery_faults:
        if profile.routers is None:
            sources = None
        else:
            # Responses carry the router's interface address — or its
            # spoofed one when the fake-address quirk is on; both must
            # match the scope or the plane silently skips that router.
            sources = [iface.address
                       for router in routers
                       for iface in router.interfaces]
            sources.extend(router.faults.fake_source_address
                           for router in routers
                           if router.faults.fake_source_address is not None)
        plane = DeliveryFaultPlane(
            seed=profile.seed,
            jitter=profile.jitter,
            spike_rate=profile.spike_rate,
            spike_delay=profile.spike_delay,
            duplication=profile.duplication,
            duplication_lag=profile.duplication_lag,
            sources=sources,
        )
        network.fault_plane = plane

    return FaultInstallation(profile=profile, plane=plane,
                             routers=[r.name for r in routers])
