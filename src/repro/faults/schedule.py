"""Scheduled fault phases: time-varying pressure on the simulated clock.

A long-running monitor watches a network whose *fault intensity*
changes over time — the diurnal ICMP rate-limit cycle is the classic
example: routers that answer freely at night start throttling under
daytime load, and a naive change detector alerts on the manufactured
stars.  :class:`ScheduledProfile` models exactly that: an ordered list
of ``(start_time, NetworkFaultProfile)`` phases swapped on the
simulated clock.

The schedule plugs into the same lazy dynamics hook route changes use
(:meth:`repro.sim.network.Network.add_dynamics`): every packet
injection calls :meth:`apply` with the current simulated time, the
schedule computes the active phase by binary search, and on a phase
boundary it restores the pre-schedule baseline (router fault fields and
the network's delivery plane) before installing the new phase through
:func:`repro.faults.profile.install_fault_profile`.  Restoring first is
what makes phases *compose cleanly*: a phase that leaves rate limiting
unset really turns it off, instead of inheriting the previous phase's
bucket rate.

Determinism under sharding holds for the same reason it does for the
static profile: every phase's delivery plane draws from per-recipient
streams, router token buckets and burst channels are keyed per probing
client, and the phase boundary itself is a pure function of the
simulated time at which a cohort flushes — identical in single-process
and sharded executions.  The schedule travels as plain data inside
:class:`repro.topology.internet.InternetConfig` (``fault_phases``), so
every topology replica rebuilds the identical fault calendar.
"""

from __future__ import annotations

from bisect import bisect_right
from typing import TYPE_CHECKING, Iterable, Optional, Sequence

from repro.errors import TopologyError
from repro.faults.profile import (
    FaultInstallation,
    NetworkFaultProfile,
    install_fault_profile,
)

if TYPE_CHECKING:  # pragma: no cover - typing-only imports
    from repro.sim.network import Network

#: The router fault fields a phase may set and a restore must undo.
_PHASE_FIELDS = ("icmp_rate_limit", "icmp_burst", "icmp_exhausted",
                 "loss_burst_start", "loss_burst_length", "burst_seed")


class ScheduledProfile:
    """Timed :class:`NetworkFaultProfile` phases on the simulated clock.

    ``phases`` is an iterable of ``(start_time, profile)`` pairs; before
    the first start time (and whenever a gap is modelled with an inert
    profile) the network runs its pre-schedule baseline.  ``protected``
    lists router names every phase must leave clean — the topology
    generator passes the vantage points' access chains, exactly as it
    does for the static profile.
    """

    def __init__(
        self,
        phases: Iterable[tuple[float, NetworkFaultProfile]],
        protected: Iterable[str] = (),
    ) -> None:
        entries = sorted(phases, key=lambda pair: pair[0])
        if not entries:
            raise TopologyError("a fault schedule needs at least one phase")
        starts = [start for start, __ in entries]
        if len(set(starts)) != len(starts):
            raise TopologyError(
                f"fault phases must have distinct start times: {starts}")
        for start, profile in entries:
            if start < 0.0:
                raise TopologyError(
                    f"phase start must be >= 0: {start}")
            if not isinstance(profile, NetworkFaultProfile):
                raise TopologyError(
                    f"phase at t={start} is not a NetworkFaultProfile: "
                    f"{profile!r}")
        self.phases: tuple[tuple[float, NetworkFaultProfile], ...] = \
            tuple(entries)
        self.protected = tuple(sorted(set(protected)))
        self._starts = [start for start, __ in self.phases]
        #: Index into ``phases`` of the installed phase; -1 = baseline.
        self._active = -1
        self._snapshotted = False
        #: Router name -> pre-schedule field values (the restore state).
        self._baseline_fields: dict[str, tuple] = {}
        self._baseline_plane = None
        #: Phase index -> its cached installation, so a schedule that
        #: revisits a phase (or replays after a clock seek) reuses the
        #: same delivery plane and its per-recipient streams.
        self._installations: dict[int, FaultInstallation] = {}

    # ------------------------------------------------------------------
    def active_index(self, now: float) -> int:
        """Index of the phase active at ``now`` (-1 = baseline)."""
        return bisect_right(self._starts, now) - 1

    def active_profile(self, now: float) -> Optional[NetworkFaultProfile]:
        """The profile active at ``now``, or None for the baseline."""
        index = self.active_index(now)
        return None if index < 0 else self.phases[index][1]

    def describe(self) -> str:
        """A one-line phase calendar for reports and CLI output."""
        spans = ", ".join(f"t>={start:g}s {profile.name}"
                          for start, profile in self.phases)
        return f"scheduled[{spans}]"

    # ------------------------------------------------------------------
    def _snapshot_baseline(self, network: "Network") -> None:
        """Capture the pre-schedule state every restore returns to."""
        from repro.sim.router import Router

        for name, node in sorted(network.nodes.items()):
            if isinstance(node, Router) and name not in self.protected:
                self._baseline_fields[name] = tuple(
                    getattr(node.faults, field_name)
                    for field_name in _PHASE_FIELDS)
        self._baseline_plane = network.fault_plane
        self._snapshotted = True

    def _restore_baseline(self, network: "Network") -> None:
        """Put every scoped router and the delivery plane back."""
        for name, values in self._baseline_fields.items():
            faults = network.node(name).faults
            for field_name, value in zip(_PHASE_FIELDS, values):
                setattr(faults, field_name, value)
        network.fault_plane = self._baseline_plane

    def _install_phase(self, network: "Network", index: int) -> None:
        cached = self._installations.get(index)
        profile = self.phases[index][1]
        if cached is None:
            self._installations[index] = install_fault_profile(
                network, profile, protected=self.protected)
        else:
            # Reinstalling a previously seen phase: replay the field
            # mutations but keep the cached delivery plane, so the
            # per-recipient fault streams continue where they left off.
            install_fault_profile(network, profile,
                                  protected=self.protected)
            if cached.plane is not None:
                network.fault_plane = cached.plane

    def apply(self, network: "Network", now: float) -> None:
        """Swap to the phase active at ``now`` (idempotent per phase).

        Registered through :meth:`Network.add_dynamics`, so this runs at
        every packet injection alongside the routing dynamics — nothing
        happens "between" probes except what the clock says.
        """
        index = self.active_index(now)
        if index == self._active:
            return
        if not self._snapshotted:
            self._snapshot_baseline(network)
        self._restore_baseline(network)
        if index >= 0:
            self._install_phase(network, index)
        self._active = index


def diurnal_rate_limit_phases(
    period: float = 60.0,
    cycles: int = 2,
    day_rate: float = 4.0,
    night_rate: float = 0.0,
    burst: int = 2,
    seed: int = 0,
    routers: Optional[Sequence[str]] = None,
) -> tuple[tuple[float, NetworkFaultProfile], ...]:
    """A compressed diurnal ICMP rate-limit calendar.

    Alternates ``cycles`` day/night pairs of length ``period`` each:
    days throttle ICMP generation to ``day_rate`` responses/second
    (burst ``burst``), nights relax to ``night_rate`` (0 disables the
    limiter, i.e. an inert phase restoring the baseline).  The first
    *day* starts at ``t = period`` so a monitor's warmup rounds see the
    clean network.
    """
    phases: list[tuple[float, NetworkFaultProfile]] = []
    scope = None if routers is None else tuple(routers)
    for cycle in range(cycles):
        day_start = period * (2 * cycle + 1)
        phases.append((day_start, NetworkFaultProfile(
            name=f"day-{cycle}", seed=seed + cycle,
            rate_limit=day_rate, rate_limit_burst=burst,
            routers=scope)))
        night = NetworkFaultProfile(
            name=f"night-{cycle}", seed=seed + cycle,
            rate_limit=night_rate, rate_limit_burst=max(burst, 1),
            routers=scope)
        phases.append((day_start + period, night))
    return tuple(phases)
