"""The delivery-path fault plane: jitter, spikes, and duplication.

Router-level faults (:class:`repro.sim.faults.FaultProfile`) decide
whether a response is *generated*; the fault plane decides what the
network does to it *in flight*.  A :class:`DeliveryFaultPlane` attached
to :attr:`repro.sim.network.Network.fault_plane` post-processes every
walk's deliveries:

- **jitter** — each delivery gains a uniform extra delay in
  ``[0, jitter)`` seconds.  Under the pipelined engine's windows this
  scrambles arrival order (a TTL-5 response regularly lands before the
  TTL-3 one); under the stop-and-wait engine it merely stretches RTTs.
- **spikes** — with probability ``spike_rate`` a delivery is held for
  ``spike_delay`` extra seconds, long enough to cross the paper's
  2-second wait: the response exists, the tracer prints a star.  This
  is the heavy tail real reordering studies observe (Viger et al.).
- **duplication** — with probability ``duplication`` a delivery is
  cloned, the copy trailing by ``duplication_lag`` seconds (plus the
  copy's own jitter), modelling duplicating middleboxes and retransmit
  bugs.  Engines must claim exactly one copy per probe.

Every draw comes from a *per-recipient* stream seeded by
``(seed, recipient address)`` and consumed in that recipient's own
delivery order.  A vantage point's fault timeline is therefore a pure
function of its own traffic — the property that keeps sharded fleet
campaigns byte-identical to single-process ones
(:mod:`repro.vantage.sharding`) even with the plane installed.

``sources`` restricts the plane to deliveries whose packets were
*sent* by one of the given addresses — the per-router attachment:
resolve a router's interface addresses and only its responses get
jittered or duplicated.  None means network-wide.
"""

from __future__ import annotations

import random
from typing import Iterable, Optional

from repro.net.inet import IPv4Address
from repro.sim.network import Delivery, WalkResult


class DeliveryFaultPlane:
    """Seeded, composable in-flight faults over a walk's deliveries."""

    def __init__(
        self,
        seed: int = 0,
        jitter: float = 0.0,
        spike_rate: float = 0.0,
        spike_delay: float = 2.5,
        duplication: float = 0.0,
        duplication_lag: float = 0.002,
        sources: Optional[Iterable[IPv4Address]] = None,
    ) -> None:
        if jitter < 0.0:
            raise ValueError(f"jitter must be >= 0: {jitter}")
        if not 0.0 <= spike_rate <= 1.0:
            raise ValueError(f"spike_rate must be in [0,1]: {spike_rate}")
        if spike_delay < 0.0:
            raise ValueError(f"spike_delay must be >= 0: {spike_delay}")
        if not 0.0 <= duplication <= 1.0:
            raise ValueError(f"duplication must be in [0,1]: {duplication}")
        if duplication_lag <= 0.0:
            raise ValueError(
                f"duplication_lag must be positive: {duplication_lag}"
            )
        self.seed = seed
        self.jitter = jitter
        self.spike_rate = spike_rate
        self.spike_delay = spike_delay
        self.duplication = duplication
        self.duplication_lag = duplication_lag
        self.sources = (None if sources is None
                        else frozenset(IPv4Address(a) for a in sources))
        self._streams: dict[IPv4Address, random.Random] = {}
        #: Diagnostics: how many deliveries were delayed / duplicated.
        self.delayed = 0
        self.duplicated = 0
        # Fault actions accumulate per recipient as plain [jitter,
        # spike, duplicate] counts, keyed on the registry identity so a
        # replaced registry restarts the accumulator; a registry
        # collector publishes them at snapshot time (apply runs per
        # walk — any registry traffic is too slow for that path).
        self._m_registry = None
        self._m_acc: dict[IPv4Address, list] = {}
        self._m_published: dict = {}

    def _stream(self, recipient: IPv4Address) -> random.Random:
        """The recipient's private draw stream (stable across processes:
        string seeding hashes via SHA-512, never the salted builtin)."""
        stream = self._streams.get(recipient)
        if stream is None:
            stream = random.Random(f"{self.seed}:{recipient}")
            self._streams[recipient] = stream
        return stream

    def applies_to(self, delivery: Delivery) -> bool:
        """Scope check: is this delivery's sender under the plane?"""
        return self.sources is None or delivery.packet.src in self.sources

    def apply(self, result: WalkResult, metrics=None) -> None:
        """Mutate a walk's deliveries in place.

        Draw order per delivery is fixed (jitter, spike, duplication —
        each drawn whenever its feature is enabled), so a recipient's
        stream consumption is a pure function of its own delivery
        sequence and the plane's configuration.  ``metrics`` is the
        network's registry (or None): each fault action increments a
        per-recipient counter, which stays deterministic across shard
        compositions because the draws themselves are per-recipient.
        """
        counts = None
        if metrics is not None and metrics.enabled:
            if self._m_registry is not metrics:
                self._m_registry = metrics
                self._m_acc = {}
                self._m_published = {}
                metrics.add_collector(self._collect)
            counts = self._m_acc
        copies: list[Delivery] = []
        for delivery in result.deliveries:
            if not self.applies_to(delivery):
                continue
            recipient = delivery.packet.dst
            rng = self._stream(recipient)
            trio = None
            if counts is not None:
                trio = counts.get(recipient)
                if trio is None:
                    trio = counts[recipient] = [0, 0, 0]
            extra = 0.0
            if self.jitter > 0.0:
                extra += rng.random() * self.jitter
                if trio is not None:
                    trio[0] += 1
            if self.spike_rate > 0.0 and rng.random() < self.spike_rate:
                extra += self.spike_delay
                if trio is not None:
                    trio[1] += 1
            if extra > 0.0:
                delivery.elapsed += extra
                self.delayed += 1
            if self.duplication > 0.0 and rng.random() < self.duplication:
                lag = self.duplication_lag
                if self.jitter > 0.0:
                    lag += rng.random() * self.jitter
                copies.append(Delivery(
                    node=delivery.node,
                    packet=delivery.packet,
                    elapsed=delivery.elapsed + lag,
                ))
                self.duplicated += 1
                if trio is not None:
                    trio[2] += 1
        result.deliveries.extend(copies)

    _ACTIONS = ("jitter", "spike", "duplicate")

    def _collect(self) -> None:
        """Publish accumulated per-recipient fault deltas on snapshot.

        Every recipient that traversed the plane gets all three series
        (zero-valued ones included) so the label universe matches what
        eager child binding used to produce — merged snapshots stay
        identical across shard compositions either way, since recipient
        sets are delivery-driven and vantage-local.
        """
        family = self._m_registry.counter(
            "repro_fault_delivery_total",
            "In-flight delivery faults applied, per client and kind.",
            ("client", "action"))
        published = self._m_published
        for recipient, trio in self._m_acc.items():
            client = str(recipient)
            done = published.get(recipient)
            if done is None:
                done = published[recipient] = [0, 0, 0]
            for slot, action in enumerate(self._ACTIONS):
                delta = trio[slot] - done[slot]
                child = family.labels(client, action)
                if delta:
                    child.inc(delta)
                    done[slot] = trio[slot]
