"""Probe-lifecycle spans on the simulated clock.

A span follows one probe from submit to resolution: the scheduler
opens it at send time (client, destination, TTL, sent_at, deadline),
the transit/fault planes annotate it with events (drops, rate-limit
actions), and the scheduler closes it at claim (rtt, responder) or
timeout.  Every timestamp is a ``SimClock`` instant — simulated
seconds since campaign start — never wall time, so traces are
deterministic and comparable across machines.

Retention is a bounded ring: once ``capacity`` spans have closed, the
oldest are dropped.  Open spans are tracked separately and do not
count against the ring until they close.

Spans are plain dicts of JSON-serializable values so they stream
straight to ``spans.jsonl`` and pickle across shard processes.
"""

from __future__ import annotations

import json
from collections import deque
from typing import Dict, List, Optional, Tuple

#: Default ring capacity — roomy enough for a smoke campaign, bounded
#: enough that long fleets cannot grow memory without limit.
DEFAULT_CAPACITY = 65536


class ProbeTracer:
    """Bounded ring buffer of probe spans keyed by scheduler probe id."""

    def __init__(self, capacity: int = DEFAULT_CAPACITY):
        if capacity <= 0:
            raise ValueError("tracer capacity must be positive")
        self.capacity = capacity
        self.spans: deque = deque(maxlen=capacity)
        self.dropped = 0
        self._open: Dict[object, dict] = {}
        self._by_key: Dict[tuple, List[object]] = {}

    def __len__(self):
        return len(self.spans)

    def begin(self, span_id, client, destination, ttl, sent_at,
              deadline, keys=()):
        """Open a span at probe submit time."""
        span = {
            "client": str(client),
            "destination": str(destination),
            "ttl": int(ttl),
            "sent_at": float(sent_at),
            "deadline": float(deadline),
            "events": [],
        }
        self._open[span_id] = span
        for key in keys:
            self._by_key.setdefault(key, []).append(span_id)
        return span

    def annotate(self, span_id, **event):
        """Append an event dict to an open span (no-op when closed)."""
        span = self._open.get(span_id)
        if span is not None:
            span["events"].append(event)

    def annotate_key(self, key, **event):
        """Annotate the most recently opened span matching ``key``.

        The transit and fault planes see packets, not probe ids; the
        scheduler registers each probe's demux match keys at begin so
        drop records can be attributed back to the span.
        """
        ids = self._by_key.get(key)
        if not ids:
            return False
        self.annotate(ids[-1], **event)
        return True

    def close(self, span_id, outcome, at, **extra):
        """Resolve a span and move it into the ring.

        Closing an unknown or already-closed span is a no-op so the
        scheduler's forget path can close defensively.
        """
        span = self._open.pop(span_id, None)
        if span is None:
            return None
        span["outcome"] = outcome
        span["resolved_at"] = float(at)
        span.update(extra)
        for ids in self._by_key.values():
            if span_id in ids:
                ids.remove(span_id)
        if len(self.spans) == self.capacity:
            self.dropped += 1
        self.spans.append(span)
        return span

    def records(self) -> List[dict]:
        """Closed spans in close order (open spans are not included)."""
        return list(self.spans)

    @staticmethod
    def sort_key(span: dict) -> Tuple:
        """Canonical cross-shard ordering for merged span streams."""
        return (span.get("client", ""), span.get("sent_at", 0.0),
                span.get("ttl", 0), span.get("destination", ""))

    @staticmethod
    def write_jsonl(spans, path) -> int:
        """Write spans (any iterable of span dicts) as JSON lines."""
        count = 0
        with open(path, "w", encoding="utf-8") as handle:
            for span in spans:
                handle.write(json.dumps(span, sort_keys=True,
                                        separators=(",", ":")) + "\n")
                count += 1
        return count


def active_tracer(network) -> Optional[ProbeTracer]:
    """The network's tracer, or None when tracing is off."""
    return getattr(network, "tracer", None)
