"""Label-aware metrics registry with a no-op fast path.

The registry hands out metric *families* (Counter, Gauge, Histogram);
a family plus a tuple of label values names one *series* (a child).
Children are cached per label tuple so hot paths bind them once and
pay only an attribute increment per event.

Two scopes, one determinism contract:

``SCOPE_CLIENT``
    Series keyed (among other labels) by the probing client.  A
    vantage point's timeline is a pure function of its own traffic, so
    client-scope series are identical whether the client ran alone in
    a shard or alongside the whole fleet.  Shards never share a
    client, so :meth:`MetricsSnapshot.merge` unions disjoint series —
    no float re-summation — and the merged snapshot is bit-for-bit
    equal to the single-process one.  That subset is what
    :meth:`MetricsSnapshot.deterministic_view` exposes and what the
    acceptance test compares.

``SCOPE_PROCESS``
    Advisory, execution-shaped series (transit-plane cache
    effectiveness, cohort sizes).  Which vantage warms a segment memo
    depends on cohort composition, so these legitimately differ
    between sharded and single-process runs.  They appear in both
    exposition formats but never in the deterministic view.

When metrics are off, components bind :data:`NULL_REGISTRY` instead:
its family getters return a shared no-op singleton whose ``inc`` /
``set`` / ``observe`` do nothing, so instrumented call sites stay
branch-free.
"""

from __future__ import annotations

import hashlib
import json
import re
from bisect import bisect_left
from dataclasses import dataclass, field
from typing import Dict, Iterable, Optional, Sequence, Tuple

SCOPE_CLIENT = "client"
SCOPE_PROCESS = "process"
_SCOPES = (SCOPE_CLIENT, SCOPE_PROCESS)

_METRIC_NAME_RE = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*$")
_LABEL_NAME_RE = re.compile(r"^[a-zA-Z_][a-zA-Z0-9_]*$")

#: Default histogram bounds — tuned for simulated-seconds timings.
DEFAULT_BUCKETS = (0.001, 0.005, 0.01, 0.05, 0.1, 0.5, 1.0, 2.0, 5.0)


class _NullChild:
    """Shared do-nothing series: the disabled-path fast object."""

    __slots__ = ()

    def inc(self, amount=1):
        """Discard the increment."""

    def set(self, value):
        """Discard the value."""

    def observe(self, value, count=1):
        """Discard the observation."""

    def labels(self, *values):
        """Return self so family and child call sites interchange."""
        return self


NULL_CHILD = _NullChild()


class _NullFamily(_NullChild):
    """Family returned by a disabled registry; ``labels`` -> no-op."""

    __slots__ = ()


NULL_FAMILY = _NullFamily()


class _CounterChild:
    """Monotonically increasing series."""

    __slots__ = ("value",)

    def __init__(self):
        self.value = 0

    def inc(self, amount=1):
        """Add ``amount`` (must be >= 0) to the series."""
        if amount < 0:
            raise ValueError("counters only go up")
        self.value += amount


class _GaugeChild:
    """Set-to-current-value series."""

    __slots__ = ("value",)

    def __init__(self):
        self.value = 0

    def set(self, value):
        """Replace the series value."""
        self.value = value

    def inc(self, amount=1):
        """Adjust the series by ``amount`` (may be negative)."""
        self.value += amount


class _HistogramChild:
    """Cumulative-bucket histogram series."""

    __slots__ = ("bounds", "bucket_counts", "sum", "count")

    def __init__(self, bounds: Tuple[float, ...]):
        self.bounds = bounds
        self.bucket_counts = [0] * (len(bounds) + 1)  # last = +Inf
        self.sum = 0.0
        self.count = 0

    def observe(self, value, count=1):
        """Record ``count`` observations of ``value``.

        ``bisect_left`` finds the first bound >= value, i.e. the
        smallest cumulative ``le`` bucket containing it; past the last
        bound it lands on the +Inf slot.
        """
        self.bucket_counts[bisect_left(self.bounds, value)] += count
        self.sum += value * count
        self.count += count


class _Family:
    """One named metric family: kind + labels + cached children."""

    __slots__ = ("name", "help", "kind", "scope", "labelnames",
                 "buckets", "_children")

    def __init__(self, name, help_text, kind, scope, labelnames,
                 buckets=None):
        self.name = name
        self.help = help_text
        self.kind = kind
        self.scope = scope
        self.labelnames = labelnames
        self.buckets = buckets
        self._children: Dict[Tuple[str, ...], object] = {}

    def labels(self, *values):
        """Child for the given label values (cached per tuple)."""
        key = tuple(str(v) for v in values)
        child = self._children.get(key)
        if child is None:
            if len(key) != len(self.labelnames):
                raise ValueError(
                    f"{self.name}: expected {len(self.labelnames)} label "
                    f"values {self.labelnames}, got {len(key)}")
            if self.kind == "counter":
                child = _CounterChild()
            elif self.kind == "gauge":
                child = _GaugeChild()
            else:
                child = _HistogramChild(self.buckets)
            self._children[key] = child
        return child

    def inc(self, amount=1):
        """Increment the label-less series (labelnames must be empty)."""
        self.labels().inc(amount)

    def set(self, value):
        """Set the label-less series (labelnames must be empty)."""
        self.labels().set(value)

    def observe(self, value, count=1):
        """Observe into the label-less series (labelnames empty)."""
        self.labels().observe(value, count)


@dataclass
class MetricsSnapshot:
    """Picklable, mergeable point-in-time copy of a registry.

    ``families`` maps metric name to a plain dict::

        {"kind": "counter" | "gauge" | "histogram",
         "help": str, "scope": "client" | "process",
         "labelnames": (str, ...),
         "buckets": (float, ...) | None,        # histograms only
         "series": {(label values...): value}}

    where a counter/gauge value is a number and a histogram value is
    ``{"bucket_counts": [...], "sum": float, "count": int}``.
    """

    families: Dict[str, dict] = field(default_factory=dict)

    @classmethod
    def merge(cls, parts: Iterable["MetricsSnapshot"]) -> "MetricsSnapshot":
        """Union series across shard snapshots.

        Client-scope series are disjoint across shards (each client
        lives in exactly one shard), so their union involves no
        arithmetic and is bit-for-bit reproducible.  Colliding series
        (process scope, or re-run shards) sum counters/gauges and add
        histogram buckets element-wise.
        """
        merged = cls()
        for part in parts:
            for name, fam in part.families.items():
                target = merged.families.get(name)
                if target is None:
                    merged.families[name] = {
                        "kind": fam["kind"],
                        "help": fam["help"],
                        "scope": fam["scope"],
                        "labelnames": tuple(fam["labelnames"]),
                        "buckets": fam.get("buckets"),
                        "series": {k: _copy_value(v)
                                   for k, v in fam["series"].items()},
                    }
                    continue
                if (target["kind"] != fam["kind"]
                        or tuple(target["labelnames"])
                        != tuple(fam["labelnames"])):
                    raise ValueError(
                        f"snapshot merge: family {name!r} redefined with a "
                        "different kind or label set")
                for key, value in fam["series"].items():
                    if key not in target["series"]:
                        target["series"][key] = _copy_value(value)
                    else:
                        target["series"][key] = _add_values(
                            target["series"][key], value,
                            target.get("buckets"))
        return merged

    def deterministic_view(self) -> dict:
        """Canonical JSON-ready dict of the client-scope families only.

        This is the structure the sharded-equals-single acceptance
        test compares: process-scope families are excluded because
        cache-warming order depends on cohort composition.
        """
        view = {}
        for name in sorted(self.families):
            fam = self.families[name]
            if fam["scope"] != SCOPE_CLIENT:
                continue
            view[name] = _family_to_json(fam)
        return view

    def deterministic_signature(self) -> str:
        """sha256 over the canonical client-scope view."""
        payload = json.dumps(self.deterministic_view(), sort_keys=True,
                             separators=(",", ":"))
        return hashlib.sha256(payload.encode("utf-8")).hexdigest()

    def value(self, name: str, *label_values) -> object:
        """Convenience lookup of one series value (None when absent)."""
        fam = self.families.get(name)
        if fam is None:
            return None
        return fam["series"].get(tuple(str(v) for v in label_values))

    def total(self, name: str) -> float:
        """Sum of a counter/gauge family across all its series."""
        fam = self.families.get(name)
        if fam is None:
            return 0
        return sum(fam["series"].values())


def _copy_value(value):
    if isinstance(value, dict):
        return {"bucket_counts": list(value["bucket_counts"]),
                "sum": value["sum"], "count": value["count"]}
    return value


def _add_values(left, right, buckets):
    if isinstance(left, dict):
        return {
            "bucket_counts": [a + b for a, b in
                              zip(left["bucket_counts"],
                                  right["bucket_counts"])],
            "sum": left["sum"] + right["sum"],
            "count": left["count"] + right["count"],
        }
    return left + right


def _family_to_json(fam: dict) -> dict:
    series = {}
    for key in sorted(fam["series"]):
        label = ",".join(f"{n}={v}"
                         for n, v in zip(fam["labelnames"], key))
        series[label] = fam["series"][key]
    out = {"kind": fam["kind"], "scope": fam["scope"],
           "labels": list(fam["labelnames"]), "series": series}
    if fam.get("buckets") is not None:
        out["buckets"] = list(fam["buckets"])
    return out


class MetricsRegistry:
    """Factory and store for metric families.

    ``MetricsRegistry(enabled=False)`` behaves exactly like no
    registry at all: every getter returns the shared no-op singleton
    and :meth:`snapshot` is empty.  That property is what lets the
    micro-bench assert "disabled registry within noise of none".
    """

    def __init__(self, enabled: bool = True):
        self.enabled = enabled
        self._families: Dict[str, _Family] = {}
        self._collectors: list = []

    def counter(self, name, help_text="", labelnames=(),
                scope=SCOPE_CLIENT):
        """Get-or-create a counter family."""
        return self._family(name, help_text, "counter", scope,
                            labelnames)

    def gauge(self, name, help_text="", labelnames=(),
              scope=SCOPE_CLIENT):
        """Get-or-create a gauge family."""
        return self._family(name, help_text, "gauge", scope, labelnames)

    def histogram(self, name, help_text="", labelnames=(),
                  scope=SCOPE_CLIENT, buckets=DEFAULT_BUCKETS):
        """Get-or-create a histogram family with the given bounds."""
        return self._family(name, help_text, "histogram", scope,
                            labelnames, buckets=tuple(buckets))

    def _family(self, name, help_text, kind, scope, labelnames,
                buckets=None):
        if not self.enabled:
            return NULL_FAMILY
        family = self._families.get(name)
        if family is not None:
            if (family.kind != kind or family.scope != scope
                    or family.labelnames != tuple(labelnames)):
                raise ValueError(
                    f"metric {name!r} re-registered with a different "
                    "kind, scope, or label set")
            return family
        if not _METRIC_NAME_RE.match(name):
            raise ValueError(f"invalid metric name {name!r}")
        if scope not in _SCOPES:
            raise ValueError(f"unknown scope {scope!r}")
        labelnames = tuple(labelnames)
        for label in labelnames:
            if not _LABEL_NAME_RE.match(label):
                raise ValueError(f"invalid label name {label!r}")
        family = _Family(name, help_text, kind, scope, labelnames,
                         buckets=buckets)
        self._families[name] = family
        return family

    def add_collector(self, fn) -> None:
        """Register ``fn()`` to run before every :meth:`snapshot`.

        Hot components accumulate events in plain ints and publish the
        delta into their bound children only when a snapshot is taken
        (collect-on-scrape).  Collectors must be idempotent across
        repeated snapshots — publish deltas, not totals.  No-op on a
        disabled registry.
        """
        if self.enabled:
            self._collectors.append(fn)

    def snapshot(self) -> MetricsSnapshot:
        """Plain-data copy of every family (picklable across shards)."""
        for fn in self._collectors:
            fn()
        snap = MetricsSnapshot()
        for name, family in self._families.items():
            series = {}
            for key, child in family._children.items():
                if family.kind == "histogram":
                    series[key] = {
                        "bucket_counts": list(child.bucket_counts),
                        "sum": child.sum, "count": child.count}
                else:
                    series[key] = child.value
            snap.families[name] = {
                "kind": family.kind, "help": family.help,
                "scope": family.scope, "labelnames": family.labelnames,
                "buckets": family.buckets, "series": series,
            }
        return snap

    def reset(self):
        """Zero every series in place (families stay registered)."""
        for family in self._families.values():
            for child in family._children.values():
                if family.kind == "histogram":
                    child.bucket_counts = [0] * len(child.bucket_counts)
                    child.sum = 0.0
                    child.count = 0
                else:
                    child.value = 0


#: Shared disabled registry — the object instrumented components bind
#: when the network carries no registry, keeping hot paths branch-free.
NULL_REGISTRY = MetricsRegistry(enabled=False)


def active_registry(network) -> Optional[MetricsRegistry]:
    """The network's enabled registry, or None.

    Components use this at construction time to decide between the
    instrumented and the zero-cost path.
    """
    metrics = getattr(network, "metrics", None)
    if metrics is not None and metrics.enabled:
        return metrics
    return None
