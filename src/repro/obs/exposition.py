"""Render metrics snapshots: Prometheus text format and JSON.

The Prometheus renderer follows the text exposition format version
0.0.4: one ``# HELP`` and ``# TYPE`` line per family, one sample line
per series, histogram series expanded into cumulative ``_bucket``
samples plus ``_sum`` / ``_count``.  Families and series render in
sorted order so the output is byte-stable for a given snapshot.

``lint_prometheus_text`` is the inverse check used by
``tools/prom_lint.py`` and CI: it validates line structure (names,
label syntax, float values, HELP/TYPE pairing) without needing a real
Prometheus parser in the container.
"""

from __future__ import annotations

import json
import re
from typing import List

from repro.obs.registry import MetricsSnapshot

_SAMPLE_RE = re.compile(
    r"^(?P<name>[a-zA-Z_:][a-zA-Z0-9_:]*)"
    r"(?:\{(?P<labels>[^}]*)\})?"
    r" (?P<value>[^ ]+)$")
_LABEL_PAIR_RE = re.compile(
    r'^[a-zA-Z_][a-zA-Z0-9_]*="(?:[^"\\]|\\.)*"$')
_TYPES = ("counter", "gauge", "histogram", "summary", "untyped")


def _escape_label_value(value: str) -> str:
    return (value.replace("\\", "\\\\").replace("\n", "\\n")
            .replace('"', '\\"'))


def _escape_help(text: str) -> str:
    return text.replace("\\", "\\\\").replace("\n", "\\n")


def _format_value(value) -> str:
    if value == float("inf"):
        return "+Inf"
    if isinstance(value, float) and value.is_integer():
        return str(int(value))
    return repr(value) if isinstance(value, float) else str(value)


def _labels_text(labelnames, values, extra=()):
    pairs = [f'{name}="{_escape_label_value(str(value))}"'
             for name, value in zip(labelnames, values)]
    pairs.extend(f'{name}="{_escape_label_value(str(value))}"'
                 for name, value in extra)
    if not pairs:
        return ""
    return "{" + ",".join(pairs) + "}"


def render_prometheus(snapshot: MetricsSnapshot) -> str:
    """Render a snapshot in the Prometheus text exposition format."""
    lines: List[str] = []
    for name in sorted(snapshot.families):
        fam = snapshot.families[name]
        kind = fam["kind"]
        lines.append(f"# HELP {name} {_escape_help(fam['help'] or name)}")
        lines.append(f"# TYPE {name} {kind}")
        labelnames = fam["labelnames"]
        for key in sorted(fam["series"]):
            value = fam["series"][key]
            if kind == "histogram":
                bounds = list(fam["buckets"] or ())
                cumulative = 0
                for bound, count in zip(
                        bounds + [float("inf")],
                        value["bucket_counts"]):
                    cumulative += count
                    le = _format_value(float(bound))
                    lines.append(
                        f"{name}_bucket"
                        f"{_labels_text(labelnames, key, [('le', le)])}"
                        f" {cumulative}")
                lines.append(f"{name}_sum{_labels_text(labelnames, key)}"
                             f" {_format_value(value['sum'])}")
                lines.append(f"{name}_count{_labels_text(labelnames, key)}"
                             f" {value['count']}")
            else:
                lines.append(f"{name}{_labels_text(labelnames, key)}"
                             f" {_format_value(value)}")
    return "\n".join(lines) + "\n" if lines else ""


def snapshot_to_json(snapshot: MetricsSnapshot, indent=None) -> str:
    """Canonical JSON rendering of every family (both scopes)."""
    from repro.obs.registry import _family_to_json

    payload = {name: _family_to_json(snapshot.families[name])
               for name in sorted(snapshot.families)}
    return json.dumps(payload, sort_keys=True, indent=indent)


def lint_prometheus_text(text: str) -> List[str]:
    """Validate Prometheus text-format lines; return problem strings.

    Checks: sample-line grammar, label pair syntax, numeric values,
    every samples' metric name is announced by a preceding ``# TYPE``
    (modulo histogram ``_bucket``/``_sum``/``_count`` suffixes), and
    HELP/TYPE lines are well-formed.  Empty output is a problem — a
    metrics-enabled run must expose at least one family.
    """
    problems: List[str] = []
    typed: dict = {}
    samples = 0
    for lineno, line in enumerate(text.splitlines(), start=1):
        if not line.strip():
            continue
        if line.startswith("# HELP "):
            parts = line.split(" ", 3)
            if len(parts) < 3:
                problems.append(f"line {lineno}: malformed HELP")
            continue
        if line.startswith("# TYPE "):
            parts = line.split(" ")
            if len(parts) != 4 or parts[3] not in _TYPES:
                problems.append(f"line {lineno}: malformed TYPE")
            else:
                typed[parts[2]] = parts[3]
            continue
        if line.startswith("#"):
            continue
        match = _SAMPLE_RE.match(line)
        if match is None:
            problems.append(f"line {lineno}: unparsable sample: {line!r}")
            continue
        samples += 1
        name = match.group("name")
        base = re.sub(r"_(bucket|sum|count)$", "", name)
        if name not in typed and base not in typed:
            problems.append(
                f"line {lineno}: sample {name!r} has no # TYPE line")
        labels = match.group("labels")
        if labels:
            for pair in _split_label_pairs(labels):
                if not _LABEL_PAIR_RE.match(pair):
                    problems.append(
                        f"line {lineno}: bad label pair {pair!r}")
        value = match.group("value")
        if value not in ("+Inf", "-Inf", "NaN"):
            try:
                float(value)
            except ValueError:
                problems.append(
                    f"line {lineno}: non-numeric value {value!r}")
    if samples == 0:
        problems.append("no samples found in exposition")
    return problems


def _split_label_pairs(labels: str) -> List[str]:
    """Split ``a="x",b="y"`` respecting escaped quotes inside values."""
    pairs, current, in_quotes, escaped = [], [], False, False
    for char in labels:
        if escaped:
            current.append(char)
            escaped = False
            continue
        if char == "\\":
            current.append(char)
            escaped = True
            continue
        if char == '"':
            in_quotes = not in_quotes
            current.append(char)
            continue
        if char == "," and not in_quotes:
            pairs.append("".join(current))
            current = []
            continue
        current.append(char)
    if current:
        pairs.append("".join(current))
    return pairs
