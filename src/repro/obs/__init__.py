"""Observability plane: metrics registry, probe tracing, exposition.

The package gives every layer of the stack — scheduler, sockets,
transit plane, fault planes, campaigns — a shared, label-aware way to
count what happened, keyed per probing client so that sharded fleet
runs merge into the same snapshot a single-process run produces.

Three modules:

``registry``
    :class:`MetricsRegistry` with Counter / Gauge / Histogram families
    and a no-op fast path (``NULL_REGISTRY``) so the cohort hot loop
    pays ~zero when metrics are off.

``tracing``
    :class:`ProbeTracer`, a bounded ring buffer of probe-lifecycle
    spans stamped on the simulated clock.

``exposition``
    Prometheus text rendering, canonical JSON snapshots, and the
    line-format lint CI uses to validate the exposition artifact.
"""

from repro.obs.registry import (
    MetricsRegistry,
    MetricsSnapshot,
    NULL_REGISTRY,
    SCOPE_CLIENT,
    SCOPE_PROCESS,
    active_registry,
)
from repro.obs.tracing import ProbeTracer
from repro.obs.exposition import (
    lint_prometheus_text,
    render_prometheus,
    snapshot_to_json,
)

__all__ = [
    "MetricsRegistry",
    "MetricsSnapshot",
    "NULL_REGISTRY",
    "SCOPE_CLIENT",
    "SCOPE_PROCESS",
    "ProbeTracer",
    "active_registry",
    "lint_prometheus_text",
    "render_prometheus",
    "snapshot_to_json",
]
