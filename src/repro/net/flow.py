"""Flow identifiers: what per-flow load balancers hash.

The paper's empirical finding (Sec. 2.1) is that routers hash the
five-tuple *as seen through the first four octets of the transport
header* — plus, for some, the IP TOS — and that for ICMP this means the
Type, Code, and **Checksum** fields.  Varying anything in that region
(classic traceroute's UDP Destination Port, or the checksum perturbation
caused by varying the ICMP Sequence Number) changes the flow.

Two extractors are provided:

- :func:`classic_five_tuple` — the textbook 5-tuple (addresses, protocol,
  ports).  Under this definition an ICMP probe has no ports, so classic
  ICMP traceroute would *not* be sprayed.  Kept for the hash-domain
  ablation (DESIGN.md §5.1).
- :func:`first_transport_word_flow` — the paper's observed behaviour:
  addresses, protocol, TOS, and the first four transport octets,
  whatever they contain.  This is the simulator default.
"""

from __future__ import annotations

import hashlib
import struct
from dataclasses import dataclass
from typing import Callable

from repro.net.icmp import (
    ICMPDestinationUnreachable,
    ICMPEchoReply,
    ICMPEchoRequest,
    ICMPTimeExceeded,
)
from repro.net.packet import Packet
from repro.net.tcp import TCPHeader
from repro.net.udp import UDPHeader


@dataclass(frozen=True)
class FlowId:
    """An opaque, hashable flow identifier.

    ``key`` is a bytes fingerprint; equal keys mean a per-flow balancer
    forwards the packets identically.  ``describe`` keeps a readable
    account of which fields went into the key, for diagnostics and for
    the Fig. 2 header-role analysis.
    """

    key: bytes
    describe: str = ""

    def bucket(self, n: int, salt: bytes = b"") -> int:
        """Deterministically map this flow onto one of ``n`` buckets.

        Each balancer instance passes its own ``salt`` so that the same
        flow may hash to different next hops at different routers, as in
        a real network where hash functions and seeds differ per box.
        """
        digest = hashlib.sha256(salt + self.key).digest()
        return int.from_bytes(digest[:8], "big") % n

    def __repr__(self) -> str:
        return f"FlowId({self.key.hex()}, {self.describe!r})"


def classic_five_tuple(packet: Packet) -> FlowId:
    """The textbook 5-tuple flow id (no TOS, no ICMP fields).

    ICMP packets collapse to (src, dst, proto) under this definition —
    all probes of an ICMP traceroute share one flow.
    """
    t = packet.transport
    if isinstance(t, (UDPHeader, TCPHeader)):
        ports = struct.pack("!HH", t.src_port, t.dst_port)
        detail = f"5-tuple ports {t.src_port}->{t.dst_port}"
    else:
        ports = b"\x00\x00\x00\x00"
        detail = "5-tuple (ICMP: no ports)"
    key = (
        packet.ip.src.packed
        + packet.ip.dst.packed
        + bytes([int(packet.ip.protocol)])
        + ports
    )
    return FlowId(key=key, describe=detail)


def first_transport_word_flow(packet: Packet) -> FlowId:
    """The paper's observed flow id: first four transport octets + TOS.

    For UDP that word is (Source Port, Destination Port); for TCP the
    same; for ICMP it is (Type, Code, Checksum).  The IP TOS is included
    because the authors found some balancers hash it.

    Memoised per packet: the id is a pure function of the immutable
    packet, and the default extractor runs for every balancer crossing
    *and* every per-hop flow-key record on the probing side.
    """
    cached = packet.__dict__.get("_flow_word")
    if cached is not None:
        return cached
    t = packet.transport
    if isinstance(t, (UDPHeader, TCPHeader)):
        word = t.first_four_octets()
        detail = f"transport word {word.hex()}"
    elif isinstance(t, ICMPEchoRequest):
        word = t.first_four_octets()
        detail = f"icmp type/code/cksum {word.hex()}"
    elif isinstance(t, (ICMPEchoReply, ICMPTimeExceeded,
                        ICMPDestinationUnreachable)):
        # Responses: type, code, and their own checksum.
        raw = t.build()[:4]
        word = raw
        detail = f"icmp response word {raw.hex()}"
    else:  # pragma: no cover - transports are exhaustive
        word = b"\x00\x00\x00\x00"
        detail = "unknown transport"
    key = (
        packet.ip.src.packed
        + packet.ip.dst.packed
        + bytes([int(packet.ip.protocol), packet.ip.tos])
        + word
    )
    flow = FlowId(key=key, describe=detail)
    object.__setattr__(packet, "_flow_word", flow)
    return flow


#: Signature of a flow extractor: Packet -> FlowId.
FlowExtractor = Callable[[Packet], FlowId]


def flow_fields_varied(packets: list[Packet],
                       extractor: FlowExtractor = first_transport_word_flow) -> bool:
    """True if the probe stream spans more than one flow.

    Used by tests and the Fig. 2 analysis to check the defining property
    of each tool: classic traceroute's stream *does* vary its flow id,
    Paris traceroute's does not.
    """
    flows = {extractor(p).key for p in packets}
    return len(flows) > 1
