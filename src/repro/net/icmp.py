"""ICMP messages (RFC 792): Echo, Time Exceeded, Destination Unreachable.

Three facts from the paper are mechanised here:

1. An ICMP Echo Request's **Checksum lives in the first four octets** of
   the ICMP header, so classic traceroute's per-probe Sequence Number
   variation perturbs the flow identifier via the checksum.  Paris
   traceroute varies the Identifier *together with* the Sequence Number
   so the checksum — and hence the flow id — stays constant.

2. A router sending **Time Exceeded** (or Destination Unreachable)
   quotes the IP header of the discarded packet **plus its first eight
   octets of payload** — i.e. the entire UDP header, or the first eight
   octets of the TCP/ICMP header.  That quote is how traceroute matches
   responses to probes, and it carries the "probe TTL" Paris traceroute
   inspects (normally 1; 0 reveals zero-TTL forwarding).

3. The responding router stamps its own **IP ID** counter and initial
   TTL on the response, which Paris traceroute uses for forensics.
"""

from __future__ import annotations

import enum
import struct
from dataclasses import dataclass, replace

from repro.errors import ChecksumError, FieldValueError, TruncatedPacketError
from repro.net.inet import checksum, require_u16
from repro.net.ipv4 import IPv4Header

#: Octets of the offending datagram quoted after the unused field
#: (IP header assumed option-less: 20 octets) — RFC 792 requires the IP
#: header plus 64 bits (8 octets) of payload.
QUOTED_PAYLOAD_LENGTH = 8

_ECHO_STRUCT = struct.Struct("!BBHHH")
_ERROR_STRUCT = struct.Struct("!BBHI")


class ICMPType(enum.IntEnum):
    """ICMP message types used in this reproduction."""

    ECHO_REPLY = 0
    DESTINATION_UNREACHABLE = 3
    ECHO_REQUEST = 8
    TIME_EXCEEDED = 11


class UnreachableCode(enum.IntEnum):
    """Destination Unreachable codes, with traceroute's display flags."""

    NET_UNREACHABLE = 0   # rendered '!N'
    HOST_UNREACHABLE = 1  # rendered '!H'
    PROTOCOL_UNREACHABLE = 2  # '!P'
    PORT_UNREACHABLE = 3  # terminates a UDP traceroute normally
    FRAGMENTATION_NEEDED = 4  # '!F'
    SOURCE_ROUTE_FAILED = 5  # '!S'
    ADMIN_PROHIBITED = 13  # '!X'

    @property
    def traceroute_flag(self) -> str:
        """The annotation classic traceroute prints for this code."""
        flags = {
            UnreachableCode.NET_UNREACHABLE: "!N",
            UnreachableCode.HOST_UNREACHABLE: "!H",
            UnreachableCode.PROTOCOL_UNREACHABLE: "!P",
            UnreachableCode.PORT_UNREACHABLE: "",
            UnreachableCode.FRAGMENTATION_NEEDED: "!F",
            UnreachableCode.SOURCE_ROUTE_FAILED: "!S",
            UnreachableCode.ADMIN_PROHIBITED: "!X",
        }
        return flags[self]


class TimeExceededCode(enum.IntEnum):
    """Time Exceeded codes."""

    TTL_EXCEEDED_IN_TRANSIT = 0
    FRAGMENT_REASSEMBLY = 1


@dataclass(frozen=True)
class ICMPEchoRequest:
    """An ICMP Echo Request (ping / ICMP-mode traceroute probe).

    The checksum covers the whole ICMP message.  Because Identifier and
    Sequence Number both feed the checksum, choosing them jointly lets
    Paris traceroute pin the checksum to a constant — see
    :meth:`repro.tracer.probes.paris_icmp_pair`.
    """

    identifier: int
    sequence: int
    payload: bytes = b""

    def __post_init__(self) -> None:
        require_u16("identifier", self.identifier)
        require_u16("sequence", self.sequence)

    @property
    def icmp_type(self) -> ICMPType:
        return ICMPType.ECHO_REQUEST

    def build(self) -> bytes:
        """Serialize with a correct checksum."""
        base = _ECHO_STRUCT.pack(
            int(ICMPType.ECHO_REQUEST), 0, 0, self.identifier, self.sequence
        )
        ck = checksum(base + self.payload)
        return _ECHO_STRUCT.pack(
            int(ICMPType.ECHO_REQUEST), 0, ck, self.identifier, self.sequence
        ) + self.payload

    def computed_checksum(self) -> int:
        """The checksum value this message serializes with.

        Exposed because the checksum *is* part of the flow identifier for
        ICMP probes: load balancers and the Fig. 2 analysis both read it.
        """
        base = _ECHO_STRUCT.pack(
            int(ICMPType.ECHO_REQUEST), 0, 0, self.identifier, self.sequence
        )
        return checksum(base + self.payload)

    def first_four_octets(self) -> bytes:
        """Type, Code, Checksum — the load-balancer-visible word pair."""
        return struct.pack("!BBH", int(ICMPType.ECHO_REQUEST), 0,
                           self.computed_checksum())

    def with_sequence(self, sequence: int) -> "ICMPEchoRequest":
        """A copy with a new Sequence Number (classic traceroute tagging)."""
        return replace(self, sequence=sequence)


@dataclass(frozen=True)
class ICMPEchoReply:
    """An ICMP Echo Reply, sent by destinations answering Echo probes."""

    identifier: int
    sequence: int
    payload: bytes = b""

    def __post_init__(self) -> None:
        require_u16("identifier", self.identifier)
        require_u16("sequence", self.sequence)

    @property
    def icmp_type(self) -> ICMPType:
        return ICMPType.ECHO_REPLY

    def build(self) -> bytes:
        base = _ECHO_STRUCT.pack(
            int(ICMPType.ECHO_REPLY), 0, 0, self.identifier, self.sequence
        )
        ck = checksum(base + self.payload)
        return _ECHO_STRUCT.pack(
            int(ICMPType.ECHO_REPLY), 0, ck, self.identifier, self.sequence
        ) + self.payload


@dataclass(frozen=True)
class _ICMPError:
    """Shared implementation of the two quoting error messages."""

    quoted_header: IPv4Header
    quoted_payload: bytes
    code: int = 0

    def _build(self, icmp_type: ICMPType) -> bytes:
        # The quote reproduces the discarded packet's IP header verbatim
        # (its total_length still describes the original datagram) plus the
        # first eight octets of its payload.
        quote = self.quoted_header.build(payload_length=len(self.quoted_payload))
        quoted = quote + self.quoted_payload[:QUOTED_PAYLOAD_LENGTH]
        base = _ERROR_STRUCT.pack(int(icmp_type), self.code, 0, 0)
        ck = checksum(base + quoted)
        return _ERROR_STRUCT.pack(int(icmp_type), self.code, ck, 0) + quoted

    @property
    def probe_ttl(self) -> int:
        """TTL of the quoted (discarded) probe — the paper's "probe TTL".

        A well-behaved router discards at TTL 1 after decrementing to...
        actually quotes the TTL *as received and decided upon*; normal
        traceroute operation yields 1.  Zero signals zero-TTL forwarding.
        """
        return self.quoted_header.ttl


@dataclass(frozen=True)
class ICMPTimeExceeded(_ICMPError):
    """Time Exceeded in transit: the workhorse of traceroute."""

    code: int = int(TimeExceededCode.TTL_EXCEEDED_IN_TRANSIT)

    @property
    def icmp_type(self) -> ICMPType:
        return ICMPType.TIME_EXCEEDED

    def build(self) -> bytes:
        return self._build(ICMPType.TIME_EXCEEDED)


@dataclass(frozen=True)
class ICMPDestinationUnreachable(_ICMPError):
    """Destination Unreachable; code 3 (port) ends a UDP trace normally."""

    code: int = int(UnreachableCode.PORT_UNREACHABLE)

    @property
    def icmp_type(self) -> ICMPType:
        return ICMPType.DESTINATION_UNREACHABLE

    @property
    def unreachable_code(self) -> UnreachableCode:
        return UnreachableCode(self.code)

    def build(self) -> bytes:
        return self._build(ICMPType.DESTINATION_UNREACHABLE)


ICMPMessage = (
    ICMPEchoRequest | ICMPEchoReply | ICMPTimeExceeded | ICMPDestinationUnreachable
)


def parse(data: bytes, verify: bool = True) -> ICMPMessage:
    """Parse an ICMP message from raw bytes.

    Echo messages return :class:`ICMPEchoRequest`/:class:`ICMPEchoReply`;
    error messages parse their quoted IP header (without verifying the
    quote's checksum — routers sometimes mangle quotes) and return
    :class:`ICMPTimeExceeded`/:class:`ICMPDestinationUnreachable`.
    """
    if len(data) < 8:
        raise TruncatedPacketError("ICMP header", 8, len(data))
    icmp_type, code = data[0], data[1]
    stored_ck = struct.unpack("!H", data[2:4])[0]
    if verify:
        computed = checksum(data[:2] + b"\x00\x00" + data[4:])
        if computed != stored_ck:
            raise ChecksumError("ICMP", computed, stored_ck)
    if icmp_type in (int(ICMPType.ECHO_REQUEST), int(ICMPType.ECHO_REPLY)):
        identifier, sequence = struct.unpack("!HH", data[4:8])
        cls = (ICMPEchoRequest if icmp_type == int(ICMPType.ECHO_REQUEST)
               else ICMPEchoReply)
        return cls(identifier=identifier, sequence=sequence, payload=data[8:])
    if icmp_type in (int(ICMPType.TIME_EXCEEDED),
                     int(ICMPType.DESTINATION_UNREACHABLE)):
        quoted = data[8:]
        header, rest = IPv4Header.parse(quoted, verify_checksum=False)
        cls = (ICMPTimeExceeded if icmp_type == int(ICMPType.TIME_EXCEEDED)
               else ICMPDestinationUnreachable)
        return cls(quoted_header=header,
                   quoted_payload=rest[:QUOTED_PAYLOAD_LENGTH], code=code)
    raise FieldValueError("icmp_type", icmp_type, "unsupported message type")
