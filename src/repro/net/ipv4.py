"""The IPv4 header (RFC 791), built and parsed at the byte level.

The fields the paper cares about are all here: TTL (traceroute's probe
mechanism), Identification (varied by tcptraceroute, and the "IP ID" that
Paris traceroute reads from responses), TOS (observed by the authors to
be hashed by some load balancers), Protocol, and the Source/Destination
addresses that anchor every flow identifier.
"""

from __future__ import annotations

import enum
import struct
from dataclasses import dataclass, field, replace

from repro.errors import ChecksumError, FieldValueError, TruncatedPacketError
from repro.net.inet import (
    IPv4Address,
    checksum,
    checksum_without,
    require_u8,
    require_u16,
)

#: Length in octets of an IPv4 header without options.
IPV4_HEADER_LENGTH = 20

#: Default initial TTL used by simulated routers for ICMP responses.  The
#: paper notes "most routers use the default TTL for ICMP, which is 255".
DEFAULT_ROUTER_TTL = 255

#: A common alternative initial TTL (hosts, some vendors).
DEFAULT_HOST_TTL = 64

_STRUCT = struct.Struct("!BBHHHBBH4s4s")


class IPProtocol(enum.IntEnum):
    """Protocol numbers for the IPv4 Protocol field (subset we use)."""

    ICMP = 1
    TCP = 6
    UDP = 17
    # Used only to discuss the authors' IPSec probing experiments.
    ESP = 50


@dataclass(frozen=True)
class IPv4Header:
    """An immutable IPv4 header without options (IHL = 5).

    ``total_length`` covers header plus payload; :meth:`build` fills it in
    from the payload length when left at 0.  The header checksum is always
    computed on serialization; on parse it is verified unless
    ``verify_checksum=False``.
    """

    src: IPv4Address
    dst: IPv4Address
    protocol: int
    ttl: int = DEFAULT_HOST_TTL
    identification: int = 0
    tos: int = 0
    flags: int = 0
    fragment_offset: int = 0
    total_length: int = 0

    def __post_init__(self) -> None:
        if type(self.src) is not IPv4Address:
            object.__setattr__(self, "src", IPv4Address(self.src))
        if type(self.dst) is not IPv4Address:
            object.__setattr__(self, "dst", IPv4Address(self.dst))
        # One chained range check covers every well-formed header (the
        # response-construction hot path); only a failure pays for the
        # per-field validators and their precise error messages.
        if (type(self.protocol) is int and 0 <= self.protocol <= 0xFF
                and type(self.ttl) is int and 0 <= self.ttl <= 0xFF
                and type(self.identification) is int
                and 0 <= self.identification <= 0xFFFF
                and type(self.tos) is int and 0 <= self.tos <= 0xFF
                and 0 <= self.flags <= 0b111
                and 0 <= self.fragment_offset <= 0x1FFF
                and type(self.total_length) is int
                and 0 <= self.total_length <= 0xFFFF):
            return
        require_u8("protocol", int(self.protocol))
        require_u8("ttl", self.ttl)
        require_u16("identification", self.identification)
        require_u8("tos", self.tos)
        if not 0 <= self.flags <= 0b111:
            raise FieldValueError("flags", self.flags, "3-bit field")
        if not 0 <= self.fragment_offset <= 0x1FFF:
            raise FieldValueError("fragment_offset", self.fragment_offset, "13-bit field")
        require_u16("total_length", self.total_length)

    def build(self, payload_length: int = 0) -> bytes:
        """Serialize to 20 bytes with a correct header checksum.

        If ``total_length`` is 0, it is computed as header + ``payload_length``.
        """
        total = self.total_length or IPV4_HEADER_LENGTH + payload_length
        version_ihl = (4 << 4) | 5
        flags_frag = (self.flags << 13) | self.fragment_offset
        raw = _STRUCT.pack(
            version_ihl,
            self.tos,
            total,
            self.identification,
            flags_frag,
            self.ttl,
            int(self.protocol),
            0,
            self.src.packed,
            self.dst.packed,
        )
        ck = checksum(raw)
        return raw[:10] + struct.pack("!H", ck) + raw[12:]

    @classmethod
    def parse(cls, data: bytes, verify_checksum: bool = True) -> tuple["IPv4Header", bytes]:
        """Parse a header from ``data``; return ``(header, payload)``.

        Raises :class:`TruncatedPacketError` on short input,
        :class:`FieldValueError` on a non-IPv4 version or IHL < 5, and
        :class:`ChecksumError` if verification is on and the stored
        checksum is wrong.
        """
        if len(data) < IPV4_HEADER_LENGTH:
            raise TruncatedPacketError("IPv4 header", IPV4_HEADER_LENGTH, len(data))
        (
            version_ihl,
            tos,
            total_length,
            identification,
            flags_frag,
            ttl,
            protocol,
            stored_ck,
            src,
            dst,
        ) = _STRUCT.unpack(data[:IPV4_HEADER_LENGTH])
        version = version_ihl >> 4
        ihl = version_ihl & 0x0F
        if version != 4:
            raise FieldValueError("version", version, "not IPv4")
        if ihl < 5:
            raise FieldValueError("ihl", ihl, "below minimum of 5")
        header_length = ihl * 4
        if len(data) < header_length:
            raise TruncatedPacketError("IPv4 options", header_length, len(data))
        if verify_checksum:
            computed = checksum_without(data[:header_length], 10)
            if computed != stored_ck:
                raise ChecksumError("IPv4 header", computed, stored_ck)
        header = cls(
            src=IPv4Address(src),
            dst=IPv4Address(dst),
            protocol=protocol,
            ttl=ttl,
            identification=identification,
            tos=tos,
            flags=flags_frag >> 13,
            fragment_offset=flags_frag & 0x1FFF,
            total_length=total_length,
        )
        payload_end = min(len(data), total_length) if total_length else len(data)
        return header, data[header_length:payload_end]

    def decremented(self) -> "IPv4Header":
        """A copy with TTL reduced by one (router forwarding step)."""
        if self.ttl == 0:
            raise FieldValueError("ttl", self.ttl, "cannot decrement below zero")
        return replace(self, ttl=self.ttl - 1)

    def with_ttl(self, ttl: int) -> "IPv4Header":
        """A copy with the TTL replaced."""
        return replace(self, ttl=ttl)

    def with_identification(self, identification: int) -> "IPv4Header":
        """A copy with the Identification field replaced."""
        return replace(self, identification=identification)

    def summary(self) -> str:
        """One-line human-readable rendering used in logs and examples."""
        try:
            proto = IPProtocol(int(self.protocol)).name
        except ValueError:
            proto = str(int(self.protocol))
        return (
            f"IPv4 {self.src} > {self.dst} proto={proto} "
            f"ttl={self.ttl} id={self.identification}"
        )
