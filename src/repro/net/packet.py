"""A full IP datagram: IPv4 header + transport message + payload.

:class:`Packet` is the unit the simulator forwards and the tracers send.
It round-trips through real bytes (:meth:`Packet.build` /
:meth:`Packet.parse`), so anything a load balancer hashes or a router
quotes is taken from the same octets a real network would see.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Union

from repro.errors import FieldValueError
from repro.net import icmp as icmp_mod
from repro.net.icmp import (
    ICMPDestinationUnreachable,
    ICMPEchoReply,
    ICMPEchoRequest,
    ICMPTimeExceeded,
)
from repro.net.inet import IPv4Address
from repro.net.ipv4 import IPv4Header, IPProtocol
from repro.net.tcp import TCPHeader
from repro.net.udp import UDPHeader

Transport = Union[
    UDPHeader,
    TCPHeader,
    ICMPEchoRequest,
    ICMPEchoReply,
    ICMPTimeExceeded,
    ICMPDestinationUnreachable,
]


@dataclass(frozen=True)
class Packet:
    """An immutable IP datagram.

    ``payload`` applies to UDP/TCP segments (ICMP messages carry their
    own payload).  The IP header's protocol field must agree with the
    transport type; :meth:`make` fills it in automatically.
    """

    ip: IPv4Header
    transport: Transport
    payload: bytes = b""

    @classmethod
    def make(
        cls,
        src: IPv4Address | str,
        dst: IPv4Address | str,
        transport: Transport,
        payload: bytes = b"",
        ttl: int = 64,
        identification: int = 0,
        tos: int = 0,
    ) -> "Packet":
        """Build a packet, deriving the IP Protocol from the transport."""
        protocol = _protocol_for(transport)
        ip = IPv4Header(
            src=IPv4Address(src),
            dst=IPv4Address(dst),
            protocol=int(protocol),
            ttl=ttl,
            identification=identification,
            tos=tos,
        )
        return cls(ip=ip, transport=transport, payload=payload)

    def build(self) -> bytes:
        """Serialize the whole datagram to wire bytes.

        Memoised per instance: a packet is immutable, so its wire form
        is fixed at construction.  Demux keys, socket sends, response
        ``raw`` views, and balancer hashes all read the same octets —
        computing the checksums once instead of at every consumer is a
        large share of the probe engine's hot path.
        """
        wire = self.__dict__.get("_wire")
        if wire is None:
            body = self.transport_bytes()
            wire = self.ip.build(payload_length=len(body)) + body
            object.__setattr__(self, "_wire", wire)
        return wire

    def transport_bytes(self) -> bytes:
        """Serialize only the transport header + payload (memoised).

        The memo may be *adopted* from another packet differing only in
        IP TTL (see the cohort walker's materialisation): the TTL is
        not part of the UDP/TCP pseudo-header, so the transport octets
        — including the quoted-payload slice routers echo — are
        identical.
        """
        body = self.__dict__.get("_transport_wire")
        if body is None:
            t = self.transport
            if isinstance(t, (UDPHeader, TCPHeader)):
                body = t.build(self.payload, self.ip.src, self.ip.dst)
            else:
                body = t.build()
            object.__setattr__(self, "_transport_wire", body)
        return body

    @classmethod
    def parse(cls, data: bytes, verify: bool = True) -> "Packet":
        """Parse wire bytes back into a :class:`Packet`.

        ICMP checksums are verified when ``verify`` is set; UDP/TCP
        checksums are preserved as stored (call
        :meth:`UDPHeader.verify` explicitly where the simulator models
        checksum-dropping routers).
        """
        ip, body = IPv4Header.parse(data, verify_checksum=verify)
        protocol = int(ip.protocol)
        if protocol == int(IPProtocol.UDP):
            udp, payload = UDPHeader.parse(body)
            return cls(ip=ip, transport=udp, payload=payload)
        if protocol == int(IPProtocol.TCP):
            tcp, payload = TCPHeader.parse(body)
            return cls(ip=ip, transport=tcp, payload=payload)
        if protocol == int(IPProtocol.ICMP):
            message = icmp_mod.parse(body, verify=verify)
            return cls(ip=ip, transport=message, payload=b"")
        raise FieldValueError("protocol", protocol, "unsupported IP protocol")

    def decremented(self) -> "Packet":
        """A copy with the IP TTL reduced by one."""
        return replace(self, ip=self.ip.decremented())

    def with_ip_identification(self, identification: int) -> "Packet":
        """A copy differing only in the IP Identification field.

        The transport-wire memo is adopted: Identification is not part
        of any pseudo-header, so the transport octets — including the
        quoted slice routers echo back — are unchanged.  MDA's ip-id
        disambiguation retags every UDP probe through this.
        """
        if identification == self.ip.identification:
            return self
        copy = replace(self, ip=self.ip.with_identification(identification))
        body = self.__dict__.get("_transport_wire")
        if body is not None:
            object.__setattr__(copy, "_transport_wire", body)
        return copy

    @property
    def src(self) -> IPv4Address:
        """Source IP address (convenience accessor)."""
        return self.ip.src

    @property
    def dst(self) -> IPv4Address:
        """Destination IP address (convenience accessor)."""
        return self.ip.dst

    @property
    def ttl(self) -> int:
        """Current IP TTL (convenience accessor)."""
        return self.ip.ttl

    def first_eight_transport_octets(self) -> bytes:
        """The first eight octets of the transport header + payload.

        This is the exact slice a router quotes in Time Exceeded and
        Destination Unreachable responses (RFC 792): the whole UDP
        header, or the first half of a TCP/ICMP header.
        """
        return self.transport_bytes()[:icmp_mod.QUOTED_PAYLOAD_LENGTH]

    def summary(self) -> str:
        """One-line rendering for logs and example output."""
        t = self.transport
        if hasattr(t, "summary"):
            detail = t.summary()
        else:
            detail = type(t).__name__
        return f"{self.ip.summary()} | {detail}"


def _protocol_for(transport: Transport) -> IPProtocol:
    """Map a transport object to its IP protocol number."""
    if isinstance(transport, UDPHeader):
        return IPProtocol.UDP
    if isinstance(transport, TCPHeader):
        return IPProtocol.TCP
    if isinstance(transport, (ICMPEchoRequest, ICMPEchoReply,
                              ICMPTimeExceeded, ICMPDestinationUnreachable)):
        return IPProtocol.ICMP
    raise FieldValueError("transport", transport, "unsupported transport type")
