"""Wire-format substrate: IPv4, UDP, TCP, and ICMP headers as real bytes.

This package implements the packet formats Paris traceroute manipulates.
Headers are built and parsed at the byte level with correct RFC 1071
checksums, because the paper's central mechanism — keeping the flow
identifier constant while still tagging each probe uniquely — is a
byte-level property of the first four octets of the transport header.

Public entry points:

- :class:`repro.net.inet.IPv4Address` — value type for addresses.
- :class:`repro.net.ipv4.IPv4Header` — the IP header.
- :class:`repro.net.udp.UDPHeader`, :class:`repro.net.tcp.TCPHeader`,
  :mod:`repro.net.icmp` — transport headers.
- :class:`repro.net.packet.Packet` — a full IP datagram.
- :mod:`repro.net.flow` — flow-identifier extraction used by load balancers.
"""

from repro.net.inet import IPv4Address, checksum
from repro.net.ipv4 import IPv4Header, IPProtocol
from repro.net.udp import UDPHeader
from repro.net.tcp import TCPHeader, TCPFlags
from repro.net.icmp import (
    ICMPDestinationUnreachable,
    ICMPEchoReply,
    ICMPEchoRequest,
    ICMPTimeExceeded,
    ICMPType,
    UnreachableCode,
)
from repro.net.packet import Packet
from repro.net.flow import FlowId, classic_five_tuple, first_transport_word_flow

__all__ = [
    "IPv4Address",
    "checksum",
    "IPv4Header",
    "IPProtocol",
    "UDPHeader",
    "TCPHeader",
    "TCPFlags",
    "ICMPType",
    "UnreachableCode",
    "ICMPEchoRequest",
    "ICMPEchoReply",
    "ICMPTimeExceeded",
    "ICMPDestinationUnreachable",
    "Packet",
    "FlowId",
    "classic_five_tuple",
    "first_transport_word_flow",
]
