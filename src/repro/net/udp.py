"""The UDP header (RFC 768) with pseudo-header checksum support.

UDP matters doubly in this paper: classic traceroute varies the UDP
Destination Port per probe (which lands in the first four octets of the
transport header and therefore perturbs per-flow load balancing), while
Paris traceroute instead varies the UDP *Checksum* — a field outside the
flow identifier — by crafting the payload so the checksum takes a chosen
value.  That trick only works if checksums are computed for real, which
this module does.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass, replace

from repro.errors import ChecksumError, TruncatedPacketError
from repro.net.inet import IPv4Address, checksum, require_u16
from repro.net.ipv4 import IPProtocol

#: Length in octets of the UDP header.
UDP_HEADER_LENGTH = 8

_STRUCT = struct.Struct("!HHHH")


def pseudo_header(src: IPv4Address, dst: IPv4Address, protocol: int, length: int) -> bytes:
    """The IPv4 pseudo-header prepended for UDP/TCP checksumming (RFC 768)."""
    return src.packed + dst.packed + struct.pack("!BBH", 0, protocol, length)


@dataclass(frozen=True)
class UDPHeader:
    """An immutable UDP header.

    ``checksum_value`` of ``None`` means "compute on build"; an explicit
    integer is emitted verbatim (the simulator uses that to model the
    transmitted bytes exactly, and tests use it to model corruption).
    """

    src_port: int
    dst_port: int
    length: int = 0
    checksum_value: int | None = None

    def __post_init__(self) -> None:
        require_u16("src_port", self.src_port)
        require_u16("dst_port", self.dst_port)
        require_u16("length", self.length)
        if self.checksum_value is not None:
            require_u16("checksum_value", self.checksum_value)

    def build(self, payload: bytes, src: IPv4Address, dst: IPv4Address) -> bytes:
        """Serialize header+payload with a correct (or forced) checksum.

        The UDP checksum covers the pseudo-header, the UDP header, and the
        payload.  Per RFC 768, a computed checksum of zero is transmitted
        as 0xFFFF (zero on the wire means "no checksum").
        """
        length = self.length or UDP_HEADER_LENGTH + len(payload)
        if self.checksum_value is not None:
            ck = self.checksum_value
        else:
            base = _STRUCT.pack(self.src_port, self.dst_port, length, 0)
            pseudo = pseudo_header(src, dst, int(IPProtocol.UDP), length)
            ck = checksum(pseudo + base + payload)
            if ck == 0:
                ck = 0xFFFF
        return _STRUCT.pack(self.src_port, self.dst_port, length, ck) + payload

    @classmethod
    def parse(cls, data: bytes) -> tuple["UDPHeader", bytes]:
        """Parse header from ``data``; return ``(header, payload)``."""
        if len(data) < UDP_HEADER_LENGTH:
            raise TruncatedPacketError("UDP header", UDP_HEADER_LENGTH, len(data))
        src_port, dst_port, length, ck = _STRUCT.unpack(data[:UDP_HEADER_LENGTH])
        header = cls(src_port=src_port, dst_port=dst_port, length=length,
                     checksum_value=ck)
        payload_end = min(len(data), length) if length else len(data)
        return header, data[UDP_HEADER_LENGTH:payload_end]

    def verify(self, payload: bytes, src: IPv4Address, dst: IPv4Address) -> None:
        """Raise :class:`ChecksumError` unless the stored checksum is valid.

        A stored checksum of zero means the sender did not compute one and
        is accepted (RFC 768).  Routers in the simulator drop UDP packets
        that fail this check, which is exactly why Paris traceroute must
        craft payloads rather than just stamping an arbitrary checksum.
        """
        stored = self.checksum_value or 0
        if stored == 0:
            return
        length = self.length or UDP_HEADER_LENGTH + len(payload)
        pseudo = pseudo_header(src, dst, int(IPProtocol.UDP), length)
        base = _STRUCT.pack(self.src_port, self.dst_port, length, 0)
        computed = checksum(pseudo + base + payload)
        if computed == 0:
            computed = 0xFFFF
        if computed != stored:
            raise ChecksumError("UDP", computed, stored)

    def with_dst_port(self, dst_port: int) -> "UDPHeader":
        """A copy with the Destination Port replaced (classic traceroute)."""
        return replace(self, dst_port=dst_port)

    def with_checksum(self, value: int | None) -> "UDPHeader":
        """A copy with the checksum forced to ``value`` (or recomputed if None)."""
        return replace(self, checksum_value=value)

    def first_four_octets(self) -> bytes:
        """The first transport word: Source Port + Destination Port.

        This is the slice the paper found per-flow load balancers hash.
        """
        return struct.pack("!HH", self.src_port, self.dst_port)

    def summary(self) -> str:
        """One-line human-readable rendering."""
        ck = "auto" if self.checksum_value is None else f"0x{self.checksum_value:04x}"
        return f"UDP {self.src_port} > {self.dst_port} cksum={ck}"
