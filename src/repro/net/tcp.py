"""The TCP header (RFC 793), as used by tcptraceroute and Paris traceroute.

Both tools keep the TCP port pair constant (tcptraceroute defaults the
destination port to 80 to emulate web traffic and traverse firewalls).
The ports occupy the first four octets of the transport header — the
slice per-flow load balancers hash — so a constant port pair means a
constant flow identifier.  Paris traceroute tags probes by varying the
Sequence Number (octets 5-8, outside the hashed region); tcptraceroute
instead varies the IP Identification field.
"""

from __future__ import annotations

import enum
import struct
from dataclasses import dataclass, replace

from repro.errors import ChecksumError, FieldValueError, TruncatedPacketError
from repro.net.inet import IPv4Address, checksum, require_u16, require_u32
from repro.net.ipv4 import IPProtocol
from repro.net.udp import pseudo_header

#: Length in octets of a TCP header without options (data offset = 5).
TCP_HEADER_LENGTH = 20

_STRUCT = struct.Struct("!HHIIBBHHH")


class TCPFlags(enum.IntFlag):
    """TCP control bits."""

    FIN = 0x01
    SYN = 0x02
    RST = 0x04
    PSH = 0x08
    ACK = 0x10
    URG = 0x20


@dataclass(frozen=True)
class TCPHeader:
    """An immutable TCP header without options.

    Probes are bare SYNs, so no options are needed; ``checksum_value``
    follows the same None-means-compute convention as UDP.
    """

    src_port: int
    dst_port: int
    seq: int = 0
    ack: int = 0
    flags: int = int(TCPFlags.SYN)
    window: int = 5840
    urgent: int = 0
    checksum_value: int | None = None

    def __post_init__(self) -> None:
        require_u16("src_port", self.src_port)
        require_u16("dst_port", self.dst_port)
        require_u32("seq", self.seq)
        require_u32("ack", self.ack)
        require_u16("window", self.window)
        require_u16("urgent", self.urgent)
        if not 0 <= int(self.flags) <= 0x3F:
            raise FieldValueError("flags", self.flags, "6-bit field")
        if self.checksum_value is not None:
            require_u16("checksum_value", self.checksum_value)

    def build(self, payload: bytes, src: IPv4Address, dst: IPv4Address) -> bytes:
        """Serialize header+payload with a correct (or forced) checksum."""
        length = TCP_HEADER_LENGTH + len(payload)
        offset_byte = (TCP_HEADER_LENGTH // 4) << 4
        if self.checksum_value is not None:
            ck = self.checksum_value
        else:
            base = _STRUCT.pack(
                self.src_port, self.dst_port, self.seq, self.ack,
                offset_byte, int(self.flags), self.window, 0, self.urgent,
            )
            pseudo = pseudo_header(src, dst, int(IPProtocol.TCP), length)
            ck = checksum(pseudo + base + payload)
        return _STRUCT.pack(
            self.src_port, self.dst_port, self.seq, self.ack,
            offset_byte, int(self.flags), self.window, ck, self.urgent,
        ) + payload

    @classmethod
    def parse(cls, data: bytes) -> tuple["TCPHeader", bytes]:
        """Parse header from ``data``; return ``(header, payload)``."""
        if len(data) < TCP_HEADER_LENGTH:
            raise TruncatedPacketError("TCP header", TCP_HEADER_LENGTH, len(data))
        (src_port, dst_port, seq, ack, offset_byte, flags,
         window, ck, urgent) = _STRUCT.unpack(data[:TCP_HEADER_LENGTH])
        data_offset = (offset_byte >> 4) * 4
        if data_offset < TCP_HEADER_LENGTH:
            data_offset = TCP_HEADER_LENGTH
        if len(data) < data_offset:
            raise TruncatedPacketError("TCP options", data_offset, len(data))
        header = cls(
            src_port=src_port, dst_port=dst_port, seq=seq, ack=ack,
            flags=flags, window=window, urgent=urgent, checksum_value=ck,
        )
        return header, data[data_offset:]

    def verify(self, payload: bytes, src: IPv4Address, dst: IPv4Address) -> None:
        """Raise :class:`ChecksumError` unless the stored checksum is valid."""
        stored = self.checksum_value or 0
        length = TCP_HEADER_LENGTH + len(payload)
        offset_byte = (TCP_HEADER_LENGTH // 4) << 4
        base = _STRUCT.pack(
            self.src_port, self.dst_port, self.seq, self.ack,
            offset_byte, int(self.flags), self.window, 0, self.urgent,
        )
        pseudo = pseudo_header(src, dst, int(IPProtocol.TCP), length)
        computed = checksum(pseudo + base + payload)
        if computed != stored:
            raise ChecksumError("TCP", computed, stored)

    def with_seq(self, seq: int) -> "TCPHeader":
        """A copy with the Sequence Number replaced (Paris TCP tagging)."""
        return replace(self, seq=seq)

    def first_four_octets(self) -> bytes:
        """The first transport word: Source Port + Destination Port."""
        return struct.pack("!HH", self.src_port, self.dst_port)

    def summary(self) -> str:
        """One-line human-readable rendering."""
        names = [f.name for f in TCPFlags if int(self.flags) & int(f)]
        return f"TCP {self.src_port} > {self.dst_port} [{','.join(names)}] seq={self.seq}"
