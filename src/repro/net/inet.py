"""Core internet primitives: IPv4 addresses and the RFC 1071 checksum.

These are the lowest-level building blocks of the wire-format substrate.
:class:`IPv4Address` is an immutable value type used throughout the
simulator and tracers; :func:`checksum` is the one's-complement sum used
by the IPv4, UDP, TCP, and ICMP headers.
"""

from __future__ import annotations

from functools import total_ordering
from typing import Iterable, Iterator, Union

from repro.errors import AddressError, FieldValueError

#: Number of octets in an IPv4 address.
IPV4_LENGTH = 4

#: Largest value representable in an unsigned 16-bit field.
MAX_U16 = 0xFFFF

#: Largest value representable in an unsigned 8-bit field.
MAX_U8 = 0xFF

#: Largest value representable in an unsigned 32-bit field.
MAX_U32 = 0xFFFFFFFF


def checksum(data: bytes) -> int:
    """Compute the RFC 1071 internet checksum of ``data``.

    The checksum is the 16-bit one's complement of the one's-complement
    sum of all 16-bit words.  Odd-length input is padded with a zero
    octet, as required by RFC 1071 section 4.1.

    Computed arithmetically: the end-around-carry sum of big-endian
    16-bit words is congruent to the whole buffer read as one big
    integer, modulo 2**16 - 1 (RFC 1071 section 2's "deferred carries"
    observation taken to its limit) — one C-level conversion instead of
    a Python loop over words.  The two representations of zero are
    disambiguated exactly as the word-loop would be: a residue of 0
    means the folded sum was 0xFFFF unless the buffer had no bits set
    at all.

    >>> checksum(b"")
    65535
    >>> hex(checksum(bytes.fromhex("45000073000040004011 0000 c0a80001c0a800c7")))
    '0xb861'
    """
    if len(data) % 2:
        data += b"\x00"
    value = int.from_bytes(data, "big")
    total = value % MAX_U16
    if total == 0:
        # Folded sum is 0xFFFF for any non-zero buffer (checksum 0);
        # an all-zero buffer sums to 0 (checksum 0xFFFF).
        return MAX_U16 if value == 0 else 0
    return MAX_U16 - total


def ones_complement_add(a: int, b: int) -> int:
    """Add two 16-bit values with one's-complement (end-around) carry.

    This is the primitive used for incremental checksum adjustment
    (RFC 1624): updating a checksum when one header word changes without
    re-summing the whole packet.
    """
    total = (a & MAX_U16) + (b & MAX_U16)
    return (total & MAX_U16) + (total >> 16)


def checksum_without(data: bytes, offset: int) -> int:
    """Checksum of ``data`` with the 16-bit word at ``offset`` zeroed.

    ``offset`` must be even and within the data.  Useful for verifying a
    header checksum: compute the sum with the checksum field treated as
    zero and compare against the stored value.
    """
    if offset % 2 or offset + 2 > len(data):
        raise FieldValueError("offset", offset, "must be an even in-range index")
    return checksum(data[:offset] + b"\x00\x00" + data[offset + 2:])


def require_u8(field: str, value: int) -> int:
    """Validate that ``value`` fits an unsigned 8-bit field."""
    if not isinstance(value, int) or not 0 <= value <= MAX_U8:
        raise FieldValueError(field, value, "must fit in 8 bits")
    return value


def require_u16(field: str, value: int) -> int:
    """Validate that ``value`` fits an unsigned 16-bit field."""
    if not isinstance(value, int) or not 0 <= value <= MAX_U16:
        raise FieldValueError(field, value, "must fit in 16 bits")
    return value


def require_u32(field: str, value: int) -> int:
    """Validate that ``value`` fits an unsigned 32-bit field."""
    if not isinstance(value, int) or not 0 <= value <= MAX_U32:
        raise FieldValueError(field, value, "must fit in 32 bits")
    return value


@total_ordering
class IPv4Address:
    """An immutable IPv4 address.

    Accepts dotted-quad strings, 32-bit integers, 4-byte sequences, or
    another :class:`IPv4Address`.  Instances hash and compare by their
    integer value, so they can key dictionaries and sort numerically.

    >>> IPv4Address("192.0.2.1").packed.hex()
    'c0000201'
    >>> int(IPv4Address("0.0.0.1"))
    1
    >>> IPv4Address(0xC0000201) == IPv4Address("192.0.2.1")
    True
    """

    __slots__ = ("_value",)

    def __new__(cls, value: Union[str, int, bytes, "IPv4Address"]):
        """Re-wrapping an address returns the same immutable object.

        Headers, packets, and index lookups normalise their inputs with
        ``IPv4Address(...)`` on hot paths; the identity shortcut makes
        that free when the input is already an address.
        """
        if type(value) is IPv4Address and cls is IPv4Address:
            return value
        return object.__new__(cls)

    def __init__(self, value: Union[str, int, bytes, "IPv4Address"]) -> None:
        if value is self:
            return
        if isinstance(value, IPv4Address):
            self._value = value._value
        elif isinstance(value, int):
            if not 0 <= value <= MAX_U32:
                raise AddressError(f"integer address out of range: {value}")
            self._value = value
        elif isinstance(value, (bytes, bytearray)):
            if len(value) != IPV4_LENGTH:
                raise AddressError(f"packed address must be 4 bytes, got {len(value)}")
            self._value = int.from_bytes(value, "big")
        elif isinstance(value, str):
            self._value = _parse_dotted_quad(value)
        else:
            raise AddressError(f"cannot interpret {type(value).__name__} as address")

    @property
    def packed(self) -> bytes:
        """The address as 4 network-order bytes."""
        return self._value.to_bytes(IPV4_LENGTH, "big")

    @property
    def is_private(self) -> bool:
        """True for RFC 1918 space (10/8, 172.16/12, 192.168/16)."""
        v = self._value
        return (
            v >> 24 == 10
            or v >> 20 == (172 << 4) | 1  # 172.16.0.0/12
            or v >> 16 == (192 << 8) | 168
        )

    @property
    def is_loopback(self) -> bool:
        """True for 127/8."""
        return self._value >> 24 == 127

    @property
    def octets(self) -> tuple[int, int, int, int]:
        """The four octets, most significant first."""
        p = self.packed
        return (p[0], p[1], p[2], p[3])

    def __reduce__(self):
        """Pickle as (type, (int value,)) — the slots default would
        call ``__new__`` without the value argument; using the live
        type keeps subclasses intact across process-pool shards."""
        return (type(self), (self._value,))

    def __int__(self) -> int:
        return self._value

    def __index__(self) -> int:
        return self._value

    def __str__(self) -> str:
        return ".".join(str(o) for o in self.packed)

    def __repr__(self) -> str:
        return f"IPv4Address({str(self)!r})"

    def __eq__(self, other: object) -> bool:
        if isinstance(other, IPv4Address):
            return self._value == other._value
        if isinstance(other, str):
            try:
                return self._value == _parse_dotted_quad(other)
            except AddressError:
                return NotImplemented
        if isinstance(other, int):
            return self._value == other
        return NotImplemented

    def __lt__(self, other: "IPv4Address") -> bool:
        if not isinstance(other, IPv4Address):
            return NotImplemented
        return self._value < other._value

    def __hash__(self) -> int:
        return hash(self._value)

    def __add__(self, offset: int) -> "IPv4Address":
        if not isinstance(offset, int):
            return NotImplemented
        return IPv4Address((self._value + offset) & MAX_U32)


def _parse_dotted_quad(text: str) -> int:
    """Parse ``a.b.c.d`` into a 32-bit integer, strictly."""
    parts = text.split(".")
    if len(parts) != IPV4_LENGTH:
        raise AddressError(f"expected 4 dotted octets: {text!r}")
    value = 0
    for part in parts:
        if not part.isdigit() or (len(part) > 1 and part[0] == "0") or len(part) > 3:
            raise AddressError(f"bad octet {part!r} in {text!r}")
        octet = int(part)
        if octet > MAX_U8:
            raise AddressError(f"octet out of range in {text!r}")
        value = (value << 8) | octet
    return value


class Prefix:
    """An IPv4 prefix ``network/length`` supporting containment tests.

    >>> Prefix("192.0.2.0/24").contains(IPv4Address("192.0.2.77"))
    True
    >>> Prefix("192.0.2.0/24").contains(IPv4Address("192.0.3.1"))
    False
    """

    __slots__ = ("network", "length", "_mask")

    def __init__(self, spec: Union[str, tuple[IPv4Address, int]]) -> None:
        if isinstance(spec, str):
            if "/" not in spec:
                raise AddressError(f"prefix needs a /length: {spec!r}")
            net_text, len_text = spec.rsplit("/", 1)
            if not len_text.isdigit():
                raise AddressError(f"bad prefix length in {spec!r}")
            network, length = IPv4Address(net_text), int(len_text)
        else:
            network, length = spec
            network = IPv4Address(network)
        if not 0 <= length <= 32:
            raise AddressError(f"prefix length out of range: {length}")
        self._mask = (MAX_U32 << (32 - length)) & MAX_U32 if length else 0
        if int(network) & ~self._mask & MAX_U32:
            raise AddressError(f"host bits set in prefix {network}/{length}")
        self.network = network
        self.length = length

    def contains(self, address: IPv4Address) -> bool:
        """True if ``address`` falls inside this prefix."""
        return (int(address) & self._mask) == int(self.network)

    def hosts(self) -> Iterator[IPv4Address]:
        """Iterate every address in the prefix (including network/broadcast)."""
        base = int(self.network)
        for offset in range(1 << (32 - self.length)):
            yield IPv4Address(base + offset)

    @property
    def size(self) -> int:
        """Number of addresses covered by the prefix."""
        return 1 << (32 - self.length)

    def __str__(self) -> str:
        return f"{self.network}/{self.length}"

    def __repr__(self) -> str:
        return f"Prefix({str(self)!r})"

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Prefix):
            return NotImplemented
        return self.network == other.network and self.length == other.length

    def __hash__(self) -> int:
        return hash((self.network, self.length))


class AddressAllocator:
    """Hands out distinct IPv4 addresses from a pool of prefixes.

    The topology generator uses one allocator per AS so that every
    simulated interface gets a unique, stable address and the
    prefix → AS map can be derived from the allocation itself.
    """

    def __init__(self, prefixes: Iterable[Union[str, Prefix]]) -> None:
        self._prefixes = [p if isinstance(p, Prefix) else Prefix(p) for p in prefixes]
        if not self._prefixes:
            raise AddressError("allocator needs at least one prefix")
        self._prefix_index = 0
        self._offset = 1  # skip the network address of each prefix

    def allocate(self) -> IPv4Address:
        """Return the next unused address, moving across prefixes as needed."""
        while self._prefix_index < len(self._prefixes):
            prefix = self._prefixes[self._prefix_index]
            # Reserve the broadcast address (all-ones host part).
            if self._offset < prefix.size - 1:
                address = prefix.network + self._offset
                self._offset += 1
                return address
            self._prefix_index += 1
            self._offset = 1
        raise AddressError("address pool exhausted")

    @property
    def prefixes(self) -> list[Prefix]:
        """The prefixes backing this allocator."""
        return list(self._prefixes)
