"""Command-line interface: explore the reproduction without writing code.

Subcommands:

- ``figures`` — list the paper's figure topologies;
- ``trace`` — run a tool through a figure topology and print the
  classic-style output (``--verbose`` adds Paris traceroute's probe
  TTL / response TTL / IP ID columns);
- ``mda`` — multipath detection against a figure topology;
- ``fig1`` / ``fig2`` — the analytic experiments;
- ``census`` — the miniature Sec. 4 campaign with all three tables;
- ``campaign`` — a multi-vantage fleet campaign on a small generated
  internet, with the cross-vantage coverage report, side-by-side
  anomaly tables, and the determinism signature (run again with a
  different ``--shards`` — the signature must not change);
- ``monitor`` — the continuous monitoring service: recurring
  per-target campaigns on one simulated clock over an evolving
  internet (routing dynamics plus a diurnal rate-limit schedule),
  streaming onset detection with cause attribution, and the alert
  pipeline with its health snapshot;
- ``faults`` — the adversarial sweep: run the Sec. 4 census under each
  named fault profile (reordering, rate limiting, duplication, loss
  bursts) and attribute every observed anomaly — manufactured by the
  fault, a persisting probe-design artifact, or in-sim real;
- ``ingest`` — run a monitor (or fleet campaign) and append the result
  to a warehouse file, denormalizing the ground-truth AS map in;
- ``query`` — stream one canned warehouse analysis as rows;
- ``report`` — the full cross-campaign warehouse report.

Every file-output option (``--metrics-out``, ``--alerts-out``,
``--trace-out``, ``--warehouse-out``, ``--warehouse``) creates missing
parent directories instead of failing.

Exit codes follow one discipline: 0 on success (including gracefully
degraded supervised runs), 1 with a one-line ``error: ...`` on stderr
for operational failures (a missing warehouse, a failed run, an
unreadable journal), 2 for usage errors (invalid flag values).

``campaign``, ``monitor``, and ``ingest`` accept the fault-tolerant
runtime flags: ``--max-shard-retries`` / ``--shard-timeout`` engage
the shard supervisor (retries under seeded backoff, hang deadlines,
reassignment, graceful degradation), and ``--resume JOURNAL``
checkpoints every completed shard so an interrupted run re-invoked
with the same journal resumes signature-identically.

Examples::

    repro-trace trace --figure 3 --tool classic
    repro-trace trace --figure 5 --tool paris --verbose
    repro-trace mda --figure 6
    repro-trace census --seed 7 --rounds 8
    repro-trace campaign --vantages 4 --shards 2
    repro-trace monitor --vantages 2 --duration 120 --alerts-out -
    repro-trace monitor --warehouse-out runs/w.sqlite
    repro-trace ingest --warehouse runs/w.sqlite --seed 11
    repro-trace query --warehouse runs/w.sqlite --name as-rates
    repro-trace report --warehouse runs/w.sqlite
    repro-trace faults --profiles reordering,rate-limit --mda
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path
from typing import Callable, Optional, Sequence

from repro._version import __version__
from repro.errors import ReproError
from repro.sim.socketapi import ProbeSocket
from repro.topology import figures
from repro.tracer.classic import ClassicTraceroute
from repro.tracer.paris import ParisTraceroute
from repro.tracer.tcptraceroute import TcpTraceroute
from repro.tracer.text import render

FIGURES: dict[str, Callable[[], figures.FigureTopology]] = {
    "1": figures.figure1,
    "3": figures.figure3,
    "4": figures.figure4,
    "5": figures.figure5,
    "6": figures.figure6,
}


def _add_runtime_flags(sub: argparse.ArgumentParser) -> None:
    """The fault-tolerant runtime flags (campaign/monitor/ingest)."""
    sub.add_argument("--max-shard-retries", type=int, default=None,
                     metavar="N",
                     help="supervise shard execution: retry a crashed, "
                          "hung, or lost shard up to N times under "
                          "seeded backoff before reassigning its "
                          "vantages (engages the supervisor)")
    sub.add_argument("--shard-timeout", type=float, default=None,
                     metavar="SECONDS",
                     help="wall-clock deadline per shard attempt in "
                          "process mode; an overdue worker is killed "
                          "and retried (engages the supervisor)")
    sub.add_argument("--resume", default=None, metavar="JOURNAL",
                     help="checkpoint completed shards to this journal "
                          "file and, when it already exists, resume "
                          "from it instead of recomputing (engages "
                          "the supervisor)")


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-trace",
        description="Paris traceroute (IMC 2006) reproduction toolkit",
    )
    parser.add_argument("--version", action="version",
                        version=f"%(prog)s {__version__}")
    commands = parser.add_subparsers(dest="command", required=True)

    commands.add_parser("figures", help="list the paper-figure topologies")

    trace = commands.add_parser("trace", help="trace through a figure")
    trace.add_argument("--figure", choices=sorted(FIGURES), default="3")
    trace.add_argument("--tool", choices=("classic", "paris", "tcp"),
                       default="paris")
    trace.add_argument("--method", choices=("udp", "icmp", "tcp"),
                       default="udp")
    trace.add_argument("--seed", type=int, default=0,
                       help="flow seed (paris) or PID (classic)")
    trace.add_argument("--verbose", action="store_true",
                       help="show probe TTL / response TTL / IP ID")
    trace.add_argument("--engine", choices=("sequential", "pipelined"),
                       default="sequential",
                       help="stop-and-wait probing or the event-driven "
                            "window engine")
    trace.add_argument("--window", type=int, default=8,
                       help="in-flight probes per trace (pipelined only)")

    mda = commands.add_parser("mda", help="multipath detection on a figure")
    mda.add_argument("--figure", choices=sorted(FIGURES), default="6")
    mda.add_argument("--alpha", type=float, default=0.05)
    mda.add_argument("--seed", type=int, default=0)
    mda.add_argument("--method", choices=("udp", "icmp", "tcp", "mda-lite"),
                     default="udp",
                     help="probing mode of the underlying Paris tool; "
                          "'mda-lite' is UDP under the census-scale "
                          "MDA-Lite stopping rule")
    mda.add_argument("--scout-flows", type=int, default=3,
                     help="MDA-Lite only: probes before accepting a "
                          "hop as serial")
    mda.add_argument("--max-ttl", type=int, default=30,
                     help="deepest hop to enumerate")
    mda.add_argument("--engine", choices=("sequential", "pipelined"),
                     default="sequential",
                     help="stop-and-wait probing or the event-driven "
                          "window engine")
    mda.add_argument("--window", type=int, default=8,
                     help="in-flight flows per hop (pipelined only)")

    fig1 = commands.add_parser("fig1", help="Fig. 1 probability experiment")
    fig1.add_argument("--trials", type=int, default=200)

    commands.add_parser("fig2", help="Fig. 2 header-role matrix")

    census = commands.add_parser(
        "census", help="miniature Sec. 4 campaign (about a minute)")
    census.add_argument("--seed", type=int, default=42)
    census.add_argument("--rounds", type=int, default=10)
    census.add_argument("--engine", choices=("sequential", "pipelined"),
                        default="sequential",
                        help="probe engine driving the campaign")

    campaign = commands.add_parser(
        "campaign",
        help="multi-vantage fleet campaign on a small internet")
    campaign.add_argument("--vantages", type=int, default=2,
                          help="number of concurrent vantage points")
    campaign.add_argument("--shards", type=int, default=1,
                          help="partition vantages over this many "
                               "topology-replica shards (1 = one "
                               "scheduler drives the whole fleet)")
    campaign.add_argument("--processes", action="store_true",
                          help="run shards in a process pool instead "
                               "of inline")
    campaign.add_argument("--seed", type=int, default=7)
    campaign.add_argument("--rounds", type=int, default=2)
    campaign.add_argument("--workers", type=int, default=4,
                          help="worker lanes per vantage")
    campaign.add_argument("--dests", type=int, default=None,
                          help="truncate the destination list")
    campaign.add_argument("--window", type=int, default=8,
                          help="in-flight probes per trace")
    campaign.add_argument("--assignment",
                          choices=("replicate", "shard"),
                          default="replicate",
                          help="every vantage probes every destination, "
                               "or the list is split across vantages")
    campaign.add_argument("--timeout-policy",
                          choices=("fixed", "adaptive"), default="fixed",
                          help="per-vantage probe timeout policy")
    campaign.add_argument("--tables", action="store_true",
                          help="also print the per-vantage Sec. 4 "
                               "anomaly tables")
    campaign.add_argument("--metrics-out", default=None, metavar="PATH",
                          help="enable the metrics registry and write "
                               "the merged snapshot as Prometheus text "
                               "exposition to PATH ('-' for stdout)")
    campaign.add_argument("--trace-out", default=None, metavar="PATH",
                          help="enable probe-lifecycle tracing and "
                               "write span records as JSON lines to "
                               "PATH")
    campaign.add_argument("--trace-capacity", type=int, default=65536,
                          help="span ring-buffer capacity per shard "
                               "(oldest spans drop beyond this)")
    campaign.add_argument("--warehouse-out", default=None, metavar="PATH",
                          help="append the fleet result to the "
                               "measurement warehouse at PATH "
                               "(created if missing)")
    _add_runtime_flags(campaign)

    monitor = commands.add_parser(
        "monitor",
        help="continuous monitoring service on an evolving internet")
    monitor.add_argument("--seed", type=int, default=7)
    monitor.add_argument("--vantages", type=int, default=2,
                         help="number of concurrent vantage points")
    monitor.add_argument("--shards", type=int, default=1,
                         help="partition vantages over this many "
                              "topology-replica shards")
    monitor.add_argument("--processes", action="store_true",
                         help="run shards in a process pool instead of "
                              "inline")
    monitor.add_argument("--duration", type=float, default=120.0,
                         help="simulated monitoring horizon, seconds")
    monitor.add_argument("--periods", default="30,40",
                         help="comma-separated per-target probing "
                              "periods (seconds), assigned round-robin")
    monitor.add_argument("--max-rounds", type=int, default=3,
                         help="cap on rounds per target (the CI bound)")
    monitor.add_argument("--warmup", type=int, default=1,
                         help="baseline rounds per target before onset "
                              "detection starts")
    monitor.add_argument("--workers", type=int, default=2,
                         help="worker lanes per vantage")
    monitor.add_argument("--dests", type=int, default=6,
                         help="truncate the monitored target list")
    monitor.add_argument("--fault-period", type=float, default=40.0,
                         help="half-period of the diurnal rate-limit "
                              "schedule (0 disables the fault phases)")
    monitor.add_argument("--metrics-out", default=None, metavar="PATH",
                         help="enable the metrics registry and write "
                              "the merged snapshot as Prometheus text "
                              "exposition to PATH ('-' for stdout)")
    monitor.add_argument("--alerts-out", default=None, metavar="PATH",
                         help="write the alert log as JSON lines to "
                              "PATH ('-' for stdout)")
    monitor.add_argument("--warehouse-out", default=None, metavar="PATH",
                         help="append the monitor result to the "
                              "measurement warehouse at PATH "
                              "(created if missing)")
    _add_runtime_flags(monitor)

    ingest = commands.add_parser(
        "ingest",
        help="run a monitor or campaign and append it to a warehouse")
    ingest.add_argument("--warehouse", required=True, metavar="PATH",
                        help="warehouse file to append to (created if "
                             "missing, parent directories included)")
    ingest.add_argument("--kind", choices=("monitor", "campaign"),
                        default="monitor",
                        help="which result shape to produce and ingest")
    ingest.add_argument("--seed", type=int, default=7)
    ingest.add_argument("--vantages", type=int, default=2,
                        help="number of concurrent vantage points")
    ingest.add_argument("--shards", type=int, default=1,
                        help="partition vantages over this many "
                             "topology-replica shards (the warehouse "
                             "digest must not depend on this)")
    ingest.add_argument("--processes", action="store_true",
                        help="run shards in a process pool instead of "
                             "inline")
    ingest.add_argument("--duration", type=float, default=120.0,
                        help="monitor horizon, simulated seconds "
                             "(monitor kind)")
    ingest.add_argument("--fault-period", type=float, default=40.0,
                        help="diurnal rate-limit half-period (monitor "
                             "kind; 0 disables)")
    ingest.add_argument("--rounds", type=int, default=2,
                        help="campaign rounds (campaign kind)")
    ingest.add_argument("--dests", type=int, default=6,
                        help="truncate the destination list")
    ingest.add_argument("--metrics-out", default=None, metavar="PATH",
                        help="write the warehouse row/ingest counters "
                             "as Prometheus text exposition to PATH "
                             "('-' for stdout)")
    _add_runtime_flags(ingest)

    query = commands.add_parser(
        "query", help="stream one canned warehouse analysis")
    query.add_argument("--warehouse", required=True, metavar="PATH",
                       help="warehouse file to read (must exist)")
    query.add_argument("--name", required=True,
                       choices=("route-changes", "prevalence",
                                "as-rates", "cause-rates", "tool-deltas",
                                "inconsistency", "disagreements"),
                       help="which canned analysis to stream")
    query.add_argument("--destination", default=None,
                       help="filter to one destination "
                            "(route-changes only)")
    query.add_argument("--tool", default=None,
                       help="filter to one tool (route-changes and "
                            "inconsistency)")
    query.add_argument("--bucket", type=float, default=30.0,
                       help="bucket width in simulated seconds "
                            "(prevalence only)")
    query.add_argument("--limit", type=int, default=0,
                       help="stop after this many rows (0 = all)")

    report = commands.add_parser(
        "report", help="full cross-campaign warehouse report")
    report.add_argument("--warehouse", required=True, metavar="PATH",
                        help="warehouse file to read (must exist)")
    report.add_argument("--as-limit", type=int, default=15,
                        help="per-AS table rows (highest artifact rate "
                             "first; 0 = all)")
    report.add_argument("--bucket", type=float, default=30.0,
                        help="prevalence bucket width, simulated "
                             "seconds")

    faults = commands.add_parser(
        "faults",
        help="Sec. 4 census under injected network faults, with "
             "artifact attribution")
    faults.add_argument("--seed", type=int, default=7)
    faults.add_argument("--rounds", type=int, default=3)
    faults.add_argument("--dests", type=int, default=None,
                        help="truncate the destination list")
    faults.add_argument("--profiles", default="all",
                        help="comma-separated fault profile names, or "
                             "'all' (choices: reordering, rate-limit, "
                             "duplication, loss-bursts, adversarial)")
    faults.add_argument("--engine", choices=("sequential", "pipelined"),
                        default="pipelined",
                        help="probe engine driving the campaigns")
    faults.add_argument("--mda", action="store_true",
                        help="also compare MDA interface enumerations "
                             "against the clean run")
    return parser


def _outpath(path: str) -> str:
    """An output path with its parent directories guaranteed to exist.

    Every file-writing option routes through here, so pointing any
    ``--*-out`` at ``some/new/dir/file`` works instead of surfacing a
    raw :class:`FileNotFoundError`.  ``-`` (stdout) passes through.
    """
    if path and path != "-":
        Path(path).parent.mkdir(parents=True, exist_ok=True)
    return path


def _validate_runtime_flags(args: argparse.Namespace) -> Optional[str]:
    """Usage-error message for bad runtime flag values, or None."""
    if (args.max_shard_retries is not None
            and args.max_shard_retries < 0):
        return (f"--max-shard-retries must not be negative, "
                f"got {args.max_shard_retries}")
    if args.shard_timeout is not None and args.shard_timeout <= 0:
        return (f"--shard-timeout must be positive, "
                f"got {args.shard_timeout}")
    return None


def _runtime_from_args(args: argparse.Namespace):
    """(RuntimeOptions, journal path) from the runtime flags.

    ``(None, None)`` when no runtime flag was given — the command then
    takes the bare unsupervised path.  Any runtime flag engages the
    supervisor, even at ``--shards 1``.
    """
    if (args.max_shard_retries is None and args.shard_timeout is None
            and args.resume is None):
        return None, None
    from repro.runtime import RuntimeOptions

    options = RuntimeOptions()
    if args.max_shard_retries is not None:
        options.max_retries = args.max_shard_retries
    if args.shard_timeout is not None:
        options.shard_timeout = args.shard_timeout
    journal = _outpath(args.resume) if args.resume else None
    return options, journal


def _print_runtime_report(result) -> None:
    """The supervised run's degradation summary, one commented block."""
    from repro.runtime import DegradationReport

    report = getattr(result, "degradation", None) or DegradationReport()
    print()
    for line in report.format().splitlines():
        print(f"# runtime: {line}")
    if report.degraded:
        print(f"# runtime: DEGRADED result — vantages "
              f"{report.excluded_vantages} excluded")


def cmd_figures(__: argparse.Namespace) -> int:
    for key in sorted(FIGURES):
        fig = FIGURES[key]()
        print(f"figure {key}: {fig.description}")
    return 0


def cmd_trace(args: argparse.Namespace) -> int:
    fig = FIGURES[args.figure]()
    socket = ProbeSocket(fig.network, fig.source)
    if args.tool == "classic":
        if args.method == "tcp":
            print("classic traceroute has no TCP mode; use --tool tcp",
                  file=sys.stderr)
            return 2
        tracer = ClassicTraceroute(socket, method=args.method,
                                   pid=args.seed or 4242)
    elif args.tool == "tcp":
        tracer = TcpTraceroute(socket, seed=args.seed)
    else:
        tracer = ParisTraceroute(socket, method=args.method,
                                 seed=args.seed)
    if args.engine == "pipelined":
        from repro.engine import PipelinedTraceroute

        if args.window < 1:
            print(f"--window must be at least 1, got {args.window}",
                  file=sys.stderr)
            return 2
        tracer = PipelinedTraceroute(tracer, window=args.window)
    print(f"# {fig.description}")
    result = tracer.trace(fig.destination_address)
    print(render(result, verbose=args.verbose))
    return 0


def cmd_mda(args: argparse.Namespace) -> int:
    from repro.tracer.multipath import MultipathDetector

    if args.max_ttl < 1:
        print(f"--max-ttl must be at least 1, got {args.max_ttl}",
              file=sys.stderr)
        return 2
    if args.window < 1:
        print(f"--window must be at least 1, got {args.window}",
              file=sys.stderr)
        return 2
    if args.scout_flows < 1:
        print(f"--scout-flows must be at least 1, got {args.scout_flows}",
              file=sys.stderr)
        return 2
    fig = FIGURES[args.figure]()
    socket = ProbeSocket(fig.network, fig.source)
    detector = MultipathDetector(socket, method=args.method,
                                 alpha=args.alpha, seed=args.seed,
                                 engine=args.engine, window=args.window,
                                 scout_flows=args.scout_flows)
    print(f"# {fig.description}")
    result = detector.trace(fig.destination_address, max_ttl=args.max_ttl)
    print(result.format_report())
    return 0


def cmd_fig1(args: argparse.Namespace) -> int:
    from repro.analysis import run_figure1_experiment

    print(run_figure1_experiment(trials=args.trials).format_table())
    return 0


def cmd_fig2(__: argparse.Namespace) -> int:
    from repro.analysis import header_role_matrix
    from repro.analysis.headerroles import format_matrix

    print(format_matrix(header_role_matrix()))
    return 0


def cmd_census(args: argparse.Namespace) -> int:
    from repro.analysis import run_calibrated_campaign

    print(f"seed={args.seed} rounds={args.rounds} engine={args.engine}; "
          "this takes a while...")
    campaign = run_calibrated_campaign(seed=args.seed, rounds=args.rounds,
                                       engine=args.engine)
    print(campaign.topology.summary())
    print()
    print(campaign.format_tables())
    return 0


def demo_internet_config(seed: int, vantages: int):
    """The small deterministic internet the ``campaign`` command runs.

    No per-packet balancers and no response loss: route inference is a
    pure function of each probe's bytes, so sharded executions are
    byte-identical to single-process ones (the determinism guarantee
    the printed signature checks).
    """
    from repro.topology.internet import InternetConfig

    return InternetConfig(
        seed=seed, n_tier1=3, n_transit=4, n_stub=8, dests_per_stub=2,
        n_loop_stub_diamonds=2, n_cycle_stub_diamonds=1,
        n_nat_dests=1, n_zero_ttl_dests=1,
        response_loss_rate=0.0, p_per_packet=0.0,
        n_vantages=vantages)


def cmd_campaign(args: argparse.Namespace) -> int:
    from repro.core import (
        coverage_report,
        format_side_by_side,
        per_vantage_statistics,
    )
    from repro.vantage import FleetConfig, run_fleet, run_fleet_sharded

    for flag, value in (("--vantages", args.vantages),
                        ("--shards", args.shards),
                        ("--rounds", args.rounds),
                        ("--workers", args.workers),
                        ("--window", args.window),
                        ("--dests", args.dests)):
        if value is not None and value < 1:
            print(f"{flag} must be at least 1, got {value}",
                  file=sys.stderr)
            return 2
    if args.trace_capacity < 1:
        print(f"--trace-capacity must be at least 1, "
              f"got {args.trace_capacity}", file=sys.stderr)
        return 2
    usage = _validate_runtime_flags(args)
    if usage is not None:
        print(usage, file=sys.stderr)
        return 2
    internet = demo_internet_config(args.seed, args.vantages)
    fleet = FleetConfig(rounds=args.rounds, workers=args.workers,
                        seed=args.seed, window=args.window,
                        assignment=args.assignment,
                        timeout_policy=args.timeout_policy)
    metrics = args.metrics_out is not None
    trace_capacity = args.trace_capacity if args.trace_out else 0
    runtime, journal = _runtime_from_args(args)
    if runtime is not None or journal is not None:
        mode = (f"supervised K={args.shards}"
                + (" (process pool)" if args.processes else " (inline)"))
        result = run_fleet_sharded(internet, fleet, shards=args.shards,
                                   processes=args.processes,
                                   max_destinations=args.dests,
                                   metrics=metrics,
                                   trace_capacity=trace_capacity,
                                   runtime=runtime,
                                   journal_path=journal)
    elif args.shards > 1:
        mode = (f"sharded K={args.shards}"
                + (" (process pool)" if args.processes else " (inline)"))
        result = run_fleet_sharded(internet, fleet, shards=args.shards,
                                   processes=args.processes,
                                   max_destinations=args.dests,
                                   metrics=metrics,
                                   trace_capacity=trace_capacity)
    else:
        mode = "single-process"
        result = run_fleet(internet, fleet,
                           max_destinations=args.dests,
                           metrics=metrics,
                           trace_capacity=trace_capacity)
    print(f"# fleet campaign: {args.vantages} vantage(s), "
          f"{len(result.destinations)} destination(s), "
          f"{args.rounds} round(s), {mode}")
    for vantage in result.vantages:
        rounds = vantage.result.rounds
        duration = (max(r.finished_at for r in rounds)
                    - min(r.started_at for r in rounds)) if rounds else 0.0
        print(f"  {vantage.name} ({vantage.address}): "
              f"{len(vantage.result.routes)} routes, "
              f"{vantage.result.probes_sent} probes, "
              f"{duration:.1f} simulated s")
    print()
    print(coverage_report(result.routes_by_vantage()).format())
    if args.tables:
        print()
        print(format_side_by_side(per_vantage_statistics(
            result.routes_by_vantage(),
            result.destinations_by_vantage())))
    print()
    print(f"# result signature: {result.signature()}")
    if runtime is not None or journal is not None:
        _print_runtime_report(result)
    if metrics and result.metrics is not None:
        from repro.obs import render_prometheus

        text = render_prometheus(result.metrics)
        if args.metrics_out == "-":
            print()
            print(text, end="")
        else:
            with open(_outpath(args.metrics_out), "w",
                      encoding="utf-8") as handle:
                handle.write(text)
            print(f"# metrics: {len(result.metrics.families)} families "
                  f"-> {args.metrics_out} "
                  f"(deterministic signature "
                  f"{result.metrics.deterministic_signature()[:16]})")
    if args.trace_out is not None:
        from repro.obs import ProbeTracer

        ProbeTracer.write_jsonl(result.spans, _outpath(args.trace_out))
        print(f"# spans: {len(result.spans)} -> {args.trace_out}")
    if args.warehouse_out is not None:
        _warehouse_append(args.warehouse_out, result, internet, "fleet")
    return 0


def monitor_internet_config(seed: int, vantages: int,
                            duration: float, fault_period: float):
    """The ``monitor`` command's evolving internet.

    The ``campaign`` demo config plus the time axis: a routing-dynamics
    calendar sized to the horizon (real route changes and forwarding
    loops for the attribution to find) and, unless disabled, a diurnal
    ICMP rate-limit schedule whose phases swap on the simulated clock.
    """
    import dataclasses

    from repro.faults import diurnal_rate_limit_phases

    phases = (diurnal_rate_limit_phases(period=fault_period, cycles=2)
              if fault_period > 0 else None)
    return dataclasses.replace(
        demo_internet_config(seed, vantages),
        dynamics_horizon=duration,
        route_changes_per_hour=90.0,
        forwarding_loops_per_hour=30.0,
        event_duration=max(duration / 3.0, 30.0),
        fault_phases=phases)


def cmd_monitor(args: argparse.Namespace) -> int:
    from repro.service import MonitorConfig, MonitorService
    from repro.vantage import FleetConfig

    for flag, value in (("--vantages", args.vantages),
                        ("--shards", args.shards),
                        ("--max-rounds", args.max_rounds),
                        ("--warmup", args.warmup),
                        ("--workers", args.workers),
                        ("--dests", args.dests)):
        if value is not None and value < 1:
            print(f"{flag} must be at least 1, got {value}",
                  file=sys.stderr)
            return 2
    try:
        periods = tuple(float(p) for p in args.periods.split(",") if p)
    except ValueError:
        print(f"--periods must be comma-separated numbers, "
              f"got {args.periods!r}", file=sys.stderr)
        return 2
    usage = _validate_runtime_flags(args)
    if usage is not None:
        print(usage, file=sys.stderr)
        return 2
    internet = monitor_internet_config(args.seed, args.vantages,
                                       args.duration, args.fault_period)
    config = MonitorConfig(
        duration=args.duration, periods=periods,
        max_rounds=args.max_rounds, warmup_rounds=args.warmup,
        fleet=FleetConfig(workers=args.workers, seed=args.seed))
    metrics = args.metrics_out is not None
    service = MonitorService(internet, config,
                             max_destinations=args.dests,
                             metrics=metrics)
    runtime, journal = _runtime_from_args(args)
    result = service.run(shards=args.shards, processes=args.processes,
                         runtime=runtime, journal_path=journal)
    health = result.health
    if runtime is not None or journal is not None:
        mode = f"supervised K={args.shards}"
    else:
        mode = (f"sharded K={args.shards}" if args.shards > 1
                else "single-process")
    print(f"# monitor: {config.describe()}, {mode}")
    print(f"# status: {health['status']} — "
          f"{health['targets']} target(s), {health['vantages']} "
          f"vantage(s), {health['target_rounds']} target-rounds over "
          f"{health['sim_duration']:.1f} simulated s")
    print(f"# onsets: {health['onsets']} "
          f"(by cause {health['onsets_by_cause']}; "
          f"by family {health['onsets_by_family']})")
    print(f"# alerts: {health['alerts']} emitted, "
          f"{health['suppressed']} suppressed, {health['held']} held, "
          f"{health['groups']} cross-vantage group(s)")
    for alert in result.alerts.alerts[:10]:
        print(f"  [sev {alert.severity}] {alert.family} "
              f"{alert.destination} ({alert.cause}) "
              f"x{alert.repeats + 1} vantages={alert.vantages}")
    if len(result.alerts.alerts) > 10:
        print(f"  ... {len(result.alerts.alerts) - 10} more")
    print()
    print(f"# result signature: {result.signature()}")
    if runtime is not None or journal is not None:
        _print_runtime_report(result)
    if args.alerts_out is not None:
        text = result.alerts.to_jsonl()
        if args.alerts_out == "-":
            print()
            print(text, end="")
        else:
            with open(_outpath(args.alerts_out), "w",
                      encoding="utf-8") as handle:
                handle.write(text)
            print(f"# alert log: {len(result.alerts.alerts)} alert(s) "
                  f"-> {args.alerts_out} "
                  f"(signature {result.alerts.signature()[:16]})")
    if metrics and result.fleet.metrics is not None:
        from repro.obs import render_prometheus

        text = render_prometheus(result.fleet.metrics)
        if args.metrics_out == "-":
            print()
            print(text, end="")
        else:
            with open(_outpath(args.metrics_out), "w",
                      encoding="utf-8") as handle:
                handle.write(text)
            snapshot = result.fleet.metrics
            print(f"# metrics: {len(snapshot.families)} families "
                  f"-> {args.metrics_out} "
                  f"(deterministic signature "
                  f"{snapshot.deterministic_signature()[:16]})")
    if args.warehouse_out is not None:
        _warehouse_append(args.warehouse_out, result, internet, "monitor")
    return 0


def _warehouse_append(path: str, result, internet, kind: str,
                      registry=None):
    """Ingest one result into the warehouse at ``path`` and report.

    Shared by ``--warehouse-out`` on ``campaign``/``monitor`` and the
    ``ingest`` subcommand; resolves the ground-truth AS map from the
    same internet config that produced the result, so hop ASNs are
    exact.
    """
    from repro.topology import generate_internet
    from repro.warehouse import ingest_fleet, ingest_monitor, open_warehouse

    asmap = generate_internet(internet).asmap
    ingest = ingest_monitor if kind == "monitor" else ingest_fleet
    with open_warehouse(_outpath(path)) as warehouse:
        receipt = ingest(warehouse, result, asmap=asmap,
                         registry=registry)
        counts = warehouse.row_counts()
        digest = warehouse.content_digest()
    state = "ingested" if receipt.ingested else "already present, skipped"
    print(f"# warehouse: run {receipt.run_id} ({receipt.kind}) "
          f"{state} -> {path}")
    if receipt.ingested:
        print(f"#   appended: traces={receipt.traces} "
              f"hops={receipt.hops} onsets={receipt.onsets} "
              f"alerts={receipt.alerts} routes={receipt.routes_added}")
    print("#   store: "
          + ", ".join(f"{t}={c}" for t, c in counts.items()))
    print(f"#   content digest: {digest}")
    return receipt


def cmd_ingest(args: argparse.Namespace) -> int:
    for flag, value in (("--vantages", args.vantages),
                        ("--shards", args.shards),
                        ("--rounds", args.rounds),
                        ("--dests", args.dests)):
        if value is not None and value < 1:
            print(f"{flag} must be at least 1, got {value}",
                  file=sys.stderr)
            return 2
    usage = _validate_runtime_flags(args)
    if usage is not None:
        print(usage, file=sys.stderr)
        return 2
    runtime, journal = _runtime_from_args(args)
    registry = None
    if args.metrics_out is not None:
        from repro.obs import MetricsRegistry

        registry = MetricsRegistry()
    if args.kind == "monitor":
        from repro.service import MonitorConfig, MonitorService
        from repro.vantage import FleetConfig

        internet = monitor_internet_config(
            args.seed, args.vantages, args.duration, args.fault_period)
        config = MonitorConfig(
            duration=args.duration, periods=(30.0, 40.0), max_rounds=3,
            fleet=FleetConfig(workers=2, seed=args.seed))
        service = MonitorService(internet, config,
                                 max_destinations=args.dests)
        result = service.run(shards=args.shards,
                             processes=args.processes,
                             runtime=runtime, journal_path=journal)
    else:
        from repro.vantage import FleetConfig, run_fleet, run_fleet_sharded

        internet = demo_internet_config(args.seed, args.vantages)
        fleet = FleetConfig(rounds=args.rounds, workers=2,
                            seed=args.seed)
        if args.shards > 1 or runtime is not None or journal is not None:
            result = run_fleet_sharded(internet, fleet,
                                       shards=args.shards,
                                       processes=args.processes,
                                       max_destinations=args.dests,
                                       runtime=runtime,
                                       journal_path=journal)
        else:
            result = run_fleet(internet, fleet,
                               max_destinations=args.dests)
    if runtime is not None or journal is not None:
        _print_runtime_report(result)
    kind = "monitor" if args.kind == "monitor" else "fleet"
    _warehouse_append(args.warehouse, result, internet, kind,
                      registry=registry)
    if registry is not None:
        from repro.obs import render_prometheus

        text = render_prometheus(registry.snapshot())
        if args.metrics_out == "-":
            print()
            print(text, end="")
        else:
            with open(_outpath(args.metrics_out), "w",
                      encoding="utf-8") as handle:
                handle.write(text)
            print(f"# metrics -> {args.metrics_out}")
    return 0


def cmd_query(args: argparse.Namespace) -> int:
    from repro.warehouse import (
        anomaly_prevalence,
        inconsistency_mining,
        open_warehouse,
        per_as_artifact_rates,
        per_cause_onset_rates,
        route_change_history,
        tool_artifact_deltas,
        vantage_disagreements,
    )

    if args.limit < 0:
        print(f"--limit must not be negative, got {args.limit}",
              file=sys.stderr)
        return 2
    # A missing or unreadable warehouse is an operational failure, not
    # a usage error: it propagates to main()'s handler and exits 1.
    with open_warehouse(args.warehouse, must_exist=True) as warehouse:
        if args.name == "route-changes":
            rows = route_change_history(warehouse,
                                        destination=args.destination,
                                        tool=args.tool)
        elif args.name == "prevalence":
            rows = anomaly_prevalence(warehouse, bucket=args.bucket)
        elif args.name == "as-rates":
            rows = per_as_artifact_rates(warehouse)
        elif args.name == "cause-rates":
            rows = per_cause_onset_rates(warehouse)
        elif args.name == "tool-deltas":
            rows = tool_artifact_deltas(warehouse)
        elif args.name == "inconsistency":
            rows = inconsistency_mining(warehouse, tool=args.tool)
        else:
            rows = vantage_disagreements(warehouse)
        count = 0
        for row in rows:
            if count == 0:
                print("\t".join(row._fields))
            print("\t".join(str(value) for value in row))
            count += 1
            if args.limit and count >= args.limit:
                break
        print(f"# {args.name}: {count} row(s)", file=sys.stderr)
    return 0


def cmd_report(args: argparse.Namespace) -> int:
    from repro.warehouse import open_warehouse, warehouse_report

    with open_warehouse(args.warehouse, must_exist=True) as warehouse:
        print(warehouse_report(warehouse, as_limit=args.as_limit,
                               bucket=args.bucket))
    return 0


def cmd_faults(args: argparse.Namespace) -> int:
    from repro.analysis import run_fault_sensitivity
    from repro.faults import FAULT_PROFILE_NAMES

    for flag, value in (("--rounds", args.rounds), ("--dests", args.dests)):
        if value is not None and value < 1:
            print(f"{flag} must be at least 1, got {value}",
                  file=sys.stderr)
            return 2
    if args.profiles == "all":
        profiles = list(FAULT_PROFILE_NAMES)
    else:
        profiles = [p.strip() for p in args.profiles.split(",") if p.strip()]
        if not profiles:
            print("--profiles names no profile; choose from "
                  f"{', '.join(FAULT_PROFILE_NAMES)} (or 'all')",
                  file=sys.stderr)
            return 2
        unknown = [p for p in profiles if p not in FAULT_PROFILE_NAMES]
        if unknown:
            print(f"unknown fault profile(s) {unknown}; choose from "
                  f"{', '.join(FAULT_PROFILE_NAMES)}", file=sys.stderr)
            return 2
    internet = demo_internet_config(args.seed, vantages=1)
    sweep = run_fault_sensitivity(
        internet, profiles=profiles, rounds=args.rounds,
        engine=args.engine, max_destinations=args.dests, mda=args.mda)
    print(f"# fault sensitivity: seed={args.seed}, "
          f"{len(sweep.destinations)} destination(s), "
          f"{args.rounds} round(s), engine={args.engine}")
    print()
    print(sweep.format_report())
    return 0


HANDLERS = {
    "figures": cmd_figures,
    "trace": cmd_trace,
    "mda": cmd_mda,
    "fig1": cmd_fig1,
    "fig2": cmd_fig2,
    "census": cmd_census,
    "campaign": cmd_campaign,
    "monitor": cmd_monitor,
    "faults": cmd_faults,
    "ingest": cmd_ingest,
    "query": cmd_query,
    "report": cmd_report,
}


def main(argv: Optional[Sequence[str]] = None) -> int:
    """Dispatch one invocation under the exit-code discipline.

    Handlers return 0 (success) or 2 (usage error) themselves; every
    operational failure — any :class:`repro.errors.ReproError` from
    the stack, or an OS-level I/O error — lands here, prints one
    ``error: ...`` line to stderr, and exits 1.  Tracebacks are for
    bugs, not for predictable failures.
    """
    args = build_parser().parse_args(argv)
    try:
        return HANDLERS[args.command](args)
    except (ReproError, OSError) as error:
        print(f"error: {error}", file=sys.stderr)
        return 1


if __name__ == "__main__":
    raise SystemExit(main())
