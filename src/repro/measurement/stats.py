"""Section 3 bookkeeping: the campaign's own vital signs.

The paper reports, for its 556 rounds: ~90 million responses with valid
source addresses, 19 thousand invalid ones, the number of stars (with
only 2.6 million appearing mid-route), coverage of 1,122 ASes including
all nine tier-1s, one-hour-eleven-minute rounds, and ~27.3 seconds per
destination.  :func:`compute_setup_statistics` derives the same
quantities from a simulated campaign.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.measurement.campaign import CampaignResult
from repro.net.inet import IPv4Address
from repro.topology.asmap import AsMapper


@dataclass
class SetupStatistics:
    """The Sec. 3 numbers for one campaign."""

    rounds: int
    destinations: int
    traces: int
    responses_valid: int
    responses_invalid: int
    stars_total: int
    stars_mid_route: int
    ases_covered: int
    tier1_covered: int
    tier1_total: int
    mean_round_duration: float
    mean_destination_time: float
    distinct_addresses: int

    def format_table(self) -> str:
        """Paper-vs-measured rendering (scaled campaign, so counts are
        shown per-scale rather than compared absolutely)."""
        lines = [
            "Measurement setup (paper Sec. 3)",
            f"{'metric':42s} {'measured':>14s}",
            f"{'rounds completed':42s} {self.rounds:14d}",
            f"{'destinations':42s} {self.destinations:14d}",
            f"{'traces collected':42s} {self.traces:14d}",
            f"{'responses (valid source)':42s} {self.responses_valid:14d}",
            f"{'responses (invalid source)':42s} {self.responses_invalid:14d}",
            f"{'stars total':42s} {self.stars_total:14d}",
            f"{'stars mid-route':42s} {self.stars_mid_route:14d}",
            f"{'ASes covered':42s} {self.ases_covered:14d}",
            f"{'tier-1 ASes covered':42s} "
            f"{self.tier1_covered:7d} of {self.tier1_total:3d}",
            f"{'mean round duration (s)':42s} {self.mean_round_duration:14.1f}",
            f"{'mean s per destination (both tools)':42s} "
            f"{self.mean_destination_time:14.2f}",
            f"{'distinct addresses discovered':42s} "
            f"{self.distinct_addresses:14d}",
        ]
        return "\n".join(lines)


def compute_setup_statistics(
    result: CampaignResult,
    asmap: Optional[AsMapper] = None,
    tier1_asns: Optional[set[int]] = None,
) -> SetupStatistics:
    """Derive the Sec. 3 table from a campaign result.

    A response source is *invalid* when the AS map cannot resolve it
    (private pools behind NATs, fake-address responders) — mirroring
    the paper's 19 thousand unresolvable addresses.  Mid-route stars
    are stars followed by at least one response later in the same
    route.
    """
    responses_valid = 0
    responses_invalid = 0
    stars_total = 0
    stars_mid = 0
    addresses: set[IPv4Address] = set()
    ases: set[int] = set()
    for route in result.routes:
        hops = route.hops
        last_response_index = max(
            (i for i, h in enumerate(hops) if h.address is not None),
            default=-1,
        )
        for index, hop in enumerate(hops):
            if hop.address is None:
                stars_total += 1
                if index < last_response_index:
                    stars_mid += 1
                continue
            addresses.add(hop.address)
            if asmap is None:
                responses_valid += 1
                continue
            asn = asmap.lookup(hop.address)
            if asn is None:
                responses_invalid += 1
            else:
                responses_valid += 1
                ases.add(asn)
    tier1 = tier1_asns or set()
    return SetupStatistics(
        rounds=len(result.rounds),
        destinations=len(result.destinations),
        traces=len(result.routes),
        responses_valid=responses_valid,
        responses_invalid=responses_invalid,
        stars_total=stars_total,
        stars_mid_route=stars_mid,
        ases_covered=len(ases),
        tier1_covered=len(ases & tier1),
        tier1_total=len(tier1),
        mean_round_duration=result.mean_round_duration,
        mean_destination_time=result.mean_destination_time,
        distinct_addresses=len(addresses),
    )
