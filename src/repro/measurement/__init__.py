"""The measurement campaign of the paper's Section 3.

- :mod:`repro.measurement.destinations` — select pingable destinations
  (random order, no duplicates), as the paper's list was built.
- :mod:`repro.measurement.campaign` — 32 virtual workers tracing each
  destination with Paris traceroute then classic traceroute, round
  after round, over a shared simulated clock.
- :mod:`repro.measurement.storage` — JSONL persistence of measured
  routes for offline re-analysis.
- :mod:`repro.measurement.stats` — the Sec. 3 bookkeeping: response
  counts, stars (total and mid-route), AS coverage, round durations.
"""

from repro.measurement.destinations import select_pingable_destinations
from repro.measurement.campaign import (
    Campaign,
    CampaignConfig,
    CampaignResult,
    StrategyOutcome,
    merge_campaign_results,
)
from repro.measurement.storage import (
    load_routes,
    save_routes,
    strategy_result_to_jsonable,
)
from repro.measurement.stats import SetupStatistics, compute_setup_statistics

__all__ = [
    "select_pingable_destinations",
    "Campaign",
    "CampaignConfig",
    "CampaignResult",
    "StrategyOutcome",
    "merge_campaign_results",
    "save_routes",
    "load_routes",
    "strategy_result_to_jsonable",
    "SetupStatistics",
    "compute_setup_statistics",
]
