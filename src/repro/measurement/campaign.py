"""The side-by-side measurement campaign (paper Sec. 3).

Per round, each of 32 virtual workers walks its share of the
destination list; for each destination it runs Paris traceroute first
and classic traceroute second, with identical timing parameters — one
probe per hop, a 2-second response timeout, minimum TTL 2 (skipping the
university network), at most 39 hops, halting after eight consecutive
stars or a Destination Unreachable.

Workers are *virtual*: the scheduler interleaves their timelines over
the shared simulated clock (earliest-free-worker first), so elapsed
campaign time behaves as if the workers ran in parallel — a round's
duration is the time the busiest worker needed, not the sum over all
traces.  Routing dynamics scheduled on the clock therefore interact
with the campaign exactly as they would in the paper's month of
measurement.

Two engines drive the probing (``CampaignConfig.engine``):

- ``"sequential"`` — the paper's regime: each worker has one probe in
  flight, hop after hop, trace after trace;
- ``"pipelined"`` — the event-driven engine: the workers become lanes
  on one :class:`repro.engine.scheduler.ProbeScheduler`, each trace
  keeping a window of probes in flight.

Per-trace flows (Paris's port pair, classic's PID) are derived from the
trace's campaign coordinates rather than from a shared stream, so both
engines probe any given (round, destination, tool) with identical
packets and — on topologies without order-sensitive randomness
(per-packet balancers, loss) — infer identical routes.

Beyond the paired traces, a campaign accepts arbitrary sans-I/O
probing strategies (``strategy_factory``): each (round, destination)
then also runs the factory's strategy — MDA census rounds being the
canonical case (:meth:`Campaign.mda_strategy_factory`) — on whichever
engine drives the campaign.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field
from typing import Iterable, Optional

from repro.core.route import MeasuredRoute
from repro.engine.asyncsocket import AsyncProbeSocket
from repro.engine.scheduler import (
    DEFAULT_WINDOW,
    ProbeScheduler,
    StrategySpec,
    TraceSpec,
)
from repro.errors import CampaignError
from repro.net.inet import IPv4Address
from repro.probing.executor import run_strategy
from repro.probing.mda import MdaStrategy
from repro.probing.mdalite import MdaLiteStrategy
from repro.probing.strategy import ProbeStrategy
from repro.sim.endhost import MeasurementHost
from repro.sim.network import Network
from repro.sim.socketapi import ProbeSocket
from repro.tracer.base import TracerouteOptions
from repro.tracer.classic import ClassicTraceroute
from repro.tracer.paris import ParisTraceroute
from repro.measurement.destinations import split_among_workers


@dataclass
class CampaignConfig:
    """Campaign parameters; defaults mirror the paper's setup."""

    rounds: int = 1
    workers: int = 32
    timeout: float = 2.0
    min_ttl: int = 2
    max_ttl: int = 39
    max_consecutive_stars: int = 8
    probes_per_hop: int = 1
    paris_method: str = "udp"
    classic_method: str = "udp"
    classic_pid_base: int = 4242
    #: Extra pacing after each trace, seconds (0 = reply-paced only).
    inter_trace_delay: float = 0.0
    seed: int = 0
    #: Probe engine: "sequential" (stop-and-wait, the paper's setup) or
    #: "pipelined" (event-driven, a window of probes in flight).
    engine: str = "sequential"
    #: In-flight probes per trace under the pipelined engine.
    window: int = DEFAULT_WINDOW

    def __post_init__(self) -> None:
        if self.engine not in ("sequential", "pipelined"):
            raise CampaignError(
                f"engine must be 'sequential' or 'pipelined', "
                f"not {self.engine!r}"
            )
        if self.window < 1:
            raise CampaignError(
                f"window must be at least 1, got {self.window}"
            )

    def options(self) -> TracerouteOptions:
        return TracerouteOptions(
            min_ttl=self.min_ttl,
            max_ttl=self.max_ttl,
            probes_per_hop=self.probes_per_hop,
            max_consecutive_stars=self.max_consecutive_stars,
        )


@dataclass
class RoundRecord:
    """Timing bookkeeping for one completed round."""

    index: int
    started_at: float
    finished_at: float
    traces: int

    @property
    def duration(self) -> float:
        return self.finished_at - self.started_at


@dataclass
class StrategyOutcome:
    """One extra-strategy run a campaign performed."""

    round_index: int
    worker: int
    destination: IPv4Address
    result: object


@dataclass
class CampaignResult:
    """Everything a campaign produced."""

    routes: list[MeasuredRoute] = field(default_factory=list)
    rounds: list[RoundRecord] = field(default_factory=list)
    destinations: list[IPv4Address] = field(default_factory=list)
    probes_sent: int = 0
    responses_received: int = 0
    #: Results of the per-destination extra strategies, if the campaign
    #: was given a ``strategy_factory`` (e.g. MDA census rounds).
    strategy_results: list[StrategyOutcome] = field(default_factory=list)
    #: :class:`repro.obs.MetricsSnapshot` of the network's registry at
    #: campaign end, when one was installed; None otherwise.  Kept out
    #: of every signature/equality path — observability never alters
    #: inference artifacts.
    metrics: object = None

    @property
    def mean_round_duration(self) -> float:
        if not self.rounds:
            return 0.0
        return sum(r.duration for r in self.rounds) / len(self.rounds)

    @property
    def mean_destination_time(self) -> float:
        """Mean simulated seconds per destination (Paris + classic pair).

        The paper reports "approximately 27.3 seconds for both a Paris
        traceroute and a classic traceroute to a given destination".
        """
        pairs = len(self.routes) // 2
        if pairs == 0:
            return 0.0
        total = sum(route.trace_duration for route in self.routes)
        return total / pairs

    def classic_routes(self) -> list[MeasuredRoute]:
        return [r for r in self.routes if not r.tool.startswith("paris")]

    def paris_routes(self) -> list[MeasuredRoute]:
        return [r for r in self.routes if r.tool.startswith("paris")]


def merge_campaign_results(
    parts: Iterable[CampaignResult],
) -> CampaignResult:
    """Combine partial campaign results into one.

    The merge path sharded executions rely on: every field is carried —
    routes, round records, probe/response counters, and crucially the
    ``strategy_results`` (whose payloads, e.g. MDA's per-hop
    ``stop_reason``, are kept by reference, not rebuilt).  Parts are
    concatenated in the order given, so callers sort shards by a
    canonical key first; destinations are deduplicated preserving first
    appearance.
    """
    merged = CampaignResult()
    seen: set[IPv4Address] = set()
    for part in parts:
        merged.routes.extend(part.routes)
        merged.rounds.extend(part.rounds)
        merged.probes_sent += part.probes_sent
        merged.responses_received += part.responses_received
        merged.strategy_results.extend(part.strategy_results)
        for destination in part.destinations:
            if destination not in seen:
                seen.add(destination)
                merged.destinations.append(destination)
    return merged


class Campaign:
    """Drive rounds of paired traces over a simulated internet.

    ``strategy_factory`` opens the campaign to arbitrary probing
    strategies: when given, each (round, destination) additionally runs
    the strategy it returns — on the blocking socket under the
    sequential engine, as an extra lane entry under the pipelined one —
    and the products land in :attr:`CampaignResult.strategy_results`.
    The factory signature is ``(round_index, worker, position,
    destination, started_at) -> ProbeStrategy``;
    :meth:`mda_strategy_factory` builds the canonical one (an MDA
    census: every destination's load-balancer interfaces enumerated
    each round).
    """

    def __init__(
        self,
        network: Network,
        source: MeasurementHost,
        destinations: Iterable[IPv4Address],
        config: CampaignConfig | None = None,
        strategy_factory: Optional[callable] = None,
    ) -> None:
        self.network = network
        self.source = source
        # Counter fence: repeated campaigns on one network (the monitor
        # service's regime) publish only their *own* LPM resolutions,
        # not whatever earlier runs left on the routers.
        self._lookup_baseline = network.route_lookups()
        self.destinations = [IPv4Address(d) for d in destinations]
        if not self.destinations:
            raise CampaignError("campaign needs at least one destination")
        self.config = config or CampaignConfig()
        self._socket = ProbeSocket(network, source,
                                   timeout=self.config.timeout)
        options = self.config.options()
        self._paris = ParisTraceroute(
            self._socket, method=self.config.paris_method,
            seed=self.config.seed, options=options)
        # Each classic trace models a new traceroute process (fresh
        # PID, hence fresh Source Port) as in the paper's campaign.
        self._classic = ClassicTraceroute(
            self._socket, method=self.config.classic_method,
            pid=self.config.classic_pid_base, fixed_pid=False,
            options=options)
        # Pipelined-engine state: one async socket for the whole
        # campaign (its counters span rounds) and the halt-TTL memo
        # that paces later rounds.
        self._async_socket: AsyncProbeSocket | None = None
        self._horizon_hints: dict = {}
        # Flat position of each worker's share start, for trace
        # ordinals that are identical across engines.
        self._share_offsets: list[int] = []
        self.strategy_factory = strategy_factory

    def mda_strategy_factory(
        self,
        alpha: float = 0.05,
        max_flows_per_hop: int = 64,
        max_ttl: int = 30,
        window: int = DEFAULT_WINDOW,
        hop_concurrency: int = 8,
    ) -> callable:
        """A ``strategy_factory`` running MDA toward each destination.

        Flows are drawn from the campaign's Paris tool with
        deterministic per-flow indices, so both engines probe identical
        packets and (absent order-sensitive randomness) enumerate
        identical interface sets.
        """

        def factory(round_index: int, worker: int, position: int,
                    destination: IPv4Address,
                    started_at: float) -> ProbeStrategy:
            return MdaStrategy(
                make_builder=lambda flow_index: self._paris.make_builder(
                    destination, flow_index=flow_index),
                destination=destination,
                alpha=alpha,
                max_flows_per_hop=max_flows_per_hop,
                max_ttl=max_ttl,
                window=window,
                hop_concurrency=hop_concurrency,
                started_at=started_at,
            )

        return factory

    def mda_lite_strategy_factory(
        self,
        alpha: float = 0.05,
        max_flows_per_hop: int = 64,
        max_ttl: int = 30,
        window: int = DEFAULT_WINDOW,
        hop_concurrency: int = 8,
        scout_flows: int = 3,
    ) -> callable:
        """A ``strategy_factory`` running MDA-Lite toward each destination.

        Same flow derivation as :meth:`mda_strategy_factory`; only the
        stopping rule (and its census-scale probe budget) differs.
        """

        def factory(round_index: int, worker: int, position: int,
                    destination: IPv4Address,
                    started_at: float) -> ProbeStrategy:
            return MdaLiteStrategy(
                make_builder=lambda flow_index: self._paris.make_builder(
                    destination, flow_index=flow_index),
                destination=destination,
                alpha=alpha,
                max_flows_per_hop=max_flows_per_hop,
                max_ttl=max_ttl,
                window=window,
                hop_concurrency=hop_concurrency,
                started_at=started_at,
                scout_flows=scout_flows,
            )

        return factory

    def run(self, progress: Optional[callable] = None) -> CampaignResult:
        """Run all configured rounds; returns the collected routes."""
        result = CampaignResult(destinations=list(self.destinations))
        shares = split_among_workers(self.destinations, self.config.workers)
        offsets, total = [], 0
        for share in shares:
            offsets.append(total)
            total += len(share)
        self._share_offsets = offsets
        pipelined = self.config.engine == "pipelined"
        if pipelined and self._async_socket is None:
            self._async_socket = AsyncProbeSocket(
                self.network, self.source, timeout=self.config.timeout)
        for round_index in range(self.config.rounds):
            if pipelined:
                record = self._run_round_pipelined(round_index, shares,
                                                   result)
            else:
                record = self._run_round(round_index, shares, result)
            result.rounds.append(record)
            if progress is not None:
                progress(record)
        if pipelined:
            result.probes_sent = self._async_socket.probes_sent
            result.responses_received = self._async_socket.responses_received
        else:
            result.probes_sent = self._socket.probes_sent
            result.responses_received = self._socket.responses_received
        self._attach_metrics(result)
        return result

    def _attach_metrics(self, result: CampaignResult) -> None:
        """Count per-destination outcomes; snapshot the registry."""
        from repro.obs.registry import SCOPE_PROCESS, active_registry

        registry = active_registry(self.network)
        if registry is None:
            return
        # Summing every router's LPM counter is too slow for the
        # transit plane's per-batch flush, so the network-wide total
        # is published here, once per campaign run.
        registry.gauge(
            "repro_fib_route_lookups",
            "Network-wide LPM resolutions since this campaign began.",
            (), scope=SCOPE_PROCESS).set(
                self.network.route_lookups() - self._lookup_baseline)
        client = str(self.source.address)
        outcomes = registry.counter(
            "repro_campaign_traces_total",
            "Completed traces per client, tool, and halt reason.",
            ("client", "tool", "halt"))
        for route in result.routes:
            outcomes.labels(client, route.tool, route.halt_reason).inc()
        if result.strategy_results:
            registry.counter(
                "repro_campaign_strategy_runs_total",
                "Extra per-destination strategy runs, per client.",
                ("client",)).labels(client).inc(
                    len(result.strategy_results))
        result.metrics = registry.snapshot()

    def _trace_ordinal(self, round_index: int, worker: int,
                       position: int) -> int:
        """The engine-independent serial number of one paired trace."""
        return (round_index * len(self.destinations)
                + self._share_offsets[worker] + position)

    def _builders_for(self, round_index: int, worker: int, position: int,
                      destination: IPv4Address):
        """Deterministic per-trace builders shared by both engines."""
        ordinal = self._trace_ordinal(round_index, worker, position)
        return (
            lambda: self._paris.make_builder(destination,
                                             flow_index=ordinal),
            lambda: self._classic.make_builder(destination,
                                               ordinal=ordinal),
        )

    def _bound_strategy(self, round_index: int, worker: int, position: int,
                        destination: IPv4Address) -> callable:
        """Close the user factory over one trace's campaign coordinates."""

        def factory(started_at: float) -> ProbeStrategy:
            return self.strategy_factory(round_index, worker, position,
                                         destination, started_at)

        return factory

    def _run_round(
        self,
        round_index: int,
        shares: list[list[IPv4Address]],
        result: CampaignResult,
    ) -> RoundRecord:
        clock = self.network.clock
        round_start = clock.now
        # Earliest-free-worker scheduling: heap of (free_at, worker id,
        # position in the worker's share).
        heap: list[tuple[float, int, int]] = [
            (round_start, worker, 0)
            for worker, share in enumerate(shares) if share
        ]
        heapq.heapify(heap)
        traces = 0
        round_end = round_start
        while heap:
            free_at, worker, position = heapq.heappop(heap)
            destination = shares[worker][position]
            clock.seek(free_at)
            builders = self._builders_for(round_index, worker, position,
                                          destination)
            for tracer, make_builder in zip((self._paris, self._classic),
                                            builders):
                trace = tracer.trace(destination, builder=make_builder())
                route = MeasuredRoute.from_result(trace,
                                                  round_index=round_index)
                result.routes.append(route)
                traces += 1
                if self.config.inter_trace_delay:
                    clock.advance(self.config.inter_trace_delay)
            if self.strategy_factory is not None:
                strategy = self.strategy_factory(
                    round_index, worker, position, destination, clock.now)
                outcome = run_strategy(self._socket, strategy)
                result.strategy_results.append(StrategyOutcome(
                    round_index=round_index, worker=worker,
                    destination=destination, result=outcome))
                if self.config.inter_trace_delay:
                    clock.advance(self.config.inter_trace_delay)
            round_end = max(round_end, clock.now)
            if position + 1 < len(shares[worker]):
                heapq.heappush(heap, (clock.now, worker, position + 1))
        clock.seek(round_end)
        return RoundRecord(index=round_index, started_at=round_start,
                           finished_at=round_end, traces=traces)

    def _run_round_pipelined(
        self,
        round_index: int,
        shares: list[list[IPv4Address]],
        result: CampaignResult,
    ) -> RoundRecord:
        """One round with every worker a lane on the event scheduler."""
        clock = self.network.clock
        round_start = clock.now
        scheduler = ProbeScheduler(
            self.network,
            self.source,
            window=self.config.window,
            socket=self._async_socket,
            horizon_hints=self._horizon_hints,
        )
        for worker, share in enumerate(shares):
            if not share:
                continue
            specs: list = []
            for position, destination in enumerate(share):
                paris_builder, classic_builder = self._builders_for(
                    round_index, worker, position, destination)
                specs.append(TraceSpec(self._paris, destination,
                                       paris_builder))
                specs.append(TraceSpec(self._classic, destination,
                                       classic_builder))
                if self.strategy_factory is not None:
                    specs.append(StrategySpec(
                        factory=self._bound_strategy(round_index, worker,
                                                     position, destination),
                        label="campaign-strategy",
                        meta=destination,
                    ))
            scheduler.add_lane(
                specs, inter_trace_delay=self.config.inter_trace_delay)
        outcomes = scheduler.run()
        traces = 0
        for outcome in outcomes:
            if isinstance(outcome.spec, TraceSpec):
                result.routes.append(MeasuredRoute.from_result(
                    outcome.result, round_index=round_index))
                traces += 1
            else:
                result.strategy_results.append(StrategyOutcome(
                    round_index=round_index, worker=outcome.lane,
                    destination=outcome.spec.meta, result=outcome.result))
        round_end = max((getattr(o.result, "finished_at", round_start)
                         for o in outcomes), default=round_start)
        if self.strategy_factory is not None:
            # Strategy results need not carry timestamps; the scheduler
            # clock, which stopped at the last resolution, bounds them —
            # without this the seek below could rewind over their probes.
            round_end = max(round_end, clock.now)
        clock.seek(round_end)
        return RoundRecord(index=round_index, started_at=round_start,
                           finished_at=round_end, traces=traces)
