"""JSONL persistence of measured routes.

A month-long campaign produces millions of routes; the paper's analysis
runs offline over stored traces.  One JSON object per line keeps files
streamable and diffable; addresses serialize as dotted quads, stars as
null.

Beyond routes, :func:`strategy_result_to_jsonable` gives the extra
per-destination strategy products (MDA's :class:`MultipathResult`
foremost) a *canonical* JSON form — interface sets sorted, every
forensic field including the per-hop ``stop_reason`` preserved — which
is what makes merged multi-vantage results byte-comparable across
single-process and sharded executions.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Iterable, Iterator, Union

from repro.core.route import MeasuredRoute, RouteHop
from repro.errors import StorageError
from repro.net.inet import IPv4Address
from repro.probing.mda import MultipathResult
from repro.tracer.result import ReplyKind, TracerouteResult


def route_to_dict(route: MeasuredRoute) -> dict:
    """A JSON-ready dict for one measured route."""
    return {
        "source": str(route.source),
        "destination": str(route.destination),
        "tool": route.tool,
        "round": route.round_index,
        "halt": route.halt_reason,
        "started_at": route.started_at,
        "duration": route.trace_duration,
        "hops": [
            {
                "ttl": hop.ttl,
                "address": None if hop.address is None else str(hop.address),
                "probe_ttl": hop.probe_ttl,
                "response_ttl": hop.response_ttl,
                "ip_id": hop.ip_id,
                "flag": hop.unreachable_flag,
                "kind": hop.kind.value if hop.kind is not None else None,
            }
            for hop in route.hops
        ],
    }


def route_from_dict(data: dict) -> MeasuredRoute:
    """Rebuild a measured route from its stored dict."""
    try:
        hops = [
            RouteHop(
                ttl=h["ttl"],
                address=None if h["address"] is None
                else IPv4Address(h["address"]),
                probe_ttl=h.get("probe_ttl"),
                response_ttl=h.get("response_ttl"),
                ip_id=h.get("ip_id"),
                unreachable_flag=h.get("flag", ""),
                kind=ReplyKind(h["kind"]) if h.get("kind") else None,
            )
            for h in data["hops"]
        ]
        return MeasuredRoute(
            source=IPv4Address(data["source"]),
            destination=IPv4Address(data["destination"]),
            hops=hops,
            tool=data.get("tool", ""),
            round_index=data.get("round", 0),
            halt_reason=data.get("halt", ""),
            started_at=data.get("started_at", 0.0),
            trace_duration=data.get("duration", 0.0),
        )
    except (KeyError, TypeError, ValueError) as error:
        raise StorageError(f"malformed route record: {error}") from error


def multipath_result_to_dict(result: MultipathResult) -> dict:
    """A canonical JSON-ready dict for one MDA product.

    Interfaces are sorted (set iteration order is not part of the
    result's identity) and the per-hop bookkeeping — ``probes_sent``,
    ``stopped_confident`` and ``stop_reason`` — is carried verbatim, so
    nothing the stopping rule decided is lost on a store/merge cycle.
    """
    return {
        "kind": "multipath",
        "destination": str(result.destination),
        "alpha": result.alpha,
        "started_at": result.started_at,
        "finished_at": result.finished_at,
        "hops": [
            {
                "ttl": hop.ttl,
                "interfaces": sorted(str(a) for a in hop.interfaces),
                "probes_sent": hop.probes_sent,
                "stopped_confident": hop.stopped_confident,
                "stop_reason": hop.stop_reason,
            }
            for hop in result.hops
        ],
    }


def strategy_result_to_jsonable(result: object) -> dict:
    """Canonical JSON form of an arbitrary strategy product.

    Known products get a lossless structured encoding; anything else
    falls back to its ``repr`` (dataclass reprs are deterministic for
    equal field values, which keeps signatures stable).
    """
    if isinstance(result, MultipathResult):
        return multipath_result_to_dict(result)
    if isinstance(result, TracerouteResult):
        return {
            "kind": "traceroute",
            "route": route_to_dict(MeasuredRoute.from_result(result)),
        }
    return {"kind": "repr", "value": repr(result)}


def save_routes(routes: Iterable[MeasuredRoute],
                path: Union[str, Path]) -> int:
    """Write routes as JSON lines; returns the number written."""
    path = Path(path)
    count = 0
    try:
        with path.open("w", encoding="utf-8") as handle:
            for route in routes:
                handle.write(json.dumps(route_to_dict(route)))
                handle.write("\n")
                count += 1
    except OSError as error:
        raise StorageError(f"cannot write {path}: {error}") from error
    return count


def load_routes(path: Union[str, Path]) -> Iterator[MeasuredRoute]:
    """Stream routes back from a JSONL file."""
    path = Path(path)
    try:
        with path.open("r", encoding="utf-8") as handle:
            for line_number, line in enumerate(handle, start=1):
                line = line.strip()
                if not line:
                    continue
                try:
                    data = json.loads(line)
                except json.JSONDecodeError as error:
                    raise StorageError(
                        f"{path}:{line_number}: bad JSON: {error}"
                    ) from error
                yield route_from_dict(data)
    except OSError as error:
        raise StorageError(f"cannot read {path}: {error}") from error
