"""Destination selection (paper Sec. 3).

"Our destination list consists of 5,000 randomly chosen pingable IPv4
addresses, without duplicates, and in random order.  We only consider
pingable addresses so as to avoid the artificial inflation of
traceroute anomalies in our results that would come from tracing
towards unused IP addresses."

:func:`select_pingable_destinations` performs the same pre-screening
against the simulated internet: it pings every candidate (one ICMP
Echo with a generous TTL) and keeps those that answer, then shuffles
and truncates.  A reply counts regardless of its source address —
destinations behind masquerading gateways answered the authors' probes
too.
"""

from __future__ import annotations

import random
from typing import Iterable, Sequence

from repro.net.icmp import ICMPEchoReply
from repro.net.inet import IPv4Address
from repro.net.packet import Packet
from repro.net.icmp import ICMPEchoRequest
from repro.sim.endhost import MeasurementHost
from repro.sim.network import Network

#: TTL used for the pingability pre-check (far above any path length).
PING_TTL = 64


def is_pingable(network: Network, source: MeasurementHost,
                address: IPv4Address) -> bool:
    """One Echo Request; True if any Echo Reply makes it back."""
    ping = Packet.make(
        source.address, address,
        ICMPEchoRequest(identifier=0x7070, sequence=1),
        ttl=PING_TTL,
    )
    result = network.inject(ping, at=source)
    return any(isinstance(d.packet.transport, ICMPEchoReply)
               for d in result.delivered_to(source))


def select_pingable_destinations(
    network: Network,
    source: MeasurementHost,
    candidates: Iterable[IPv4Address],
    count: int | None = None,
    seed: int = 0,
) -> list[IPv4Address]:
    """The paper's destination list: pingable, deduplicated, shuffled.

    ``count`` truncates the list after shuffling (None keeps all).
    """
    unique: list[IPv4Address] = []
    seen: set[IPv4Address] = set()
    for candidate in candidates:
        address = IPv4Address(candidate)
        if address in seen:
            continue
        seen.add(address)
        unique.append(address)
    pingable = [a for a in unique if is_pingable(network, source, a)]
    rng = random.Random(seed)
    rng.shuffle(pingable)
    if count is not None:
        pingable = pingable[:count]
    return pingable


def split_among_workers(
    destinations: Sequence[IPv4Address], workers: int
) -> list[list[IPv4Address]]:
    """Partition the list as the paper does: each of the 32 parallel
    processes probes 1/32 of the destinations."""
    if workers < 1:
        raise ValueError("need at least one worker")
    shares: list[list[IPv4Address]] = [[] for __ in range(workers)]
    for index, destination in enumerate(destinations):
        shares[index % workers].append(destination)
    return shares
