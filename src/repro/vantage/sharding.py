"""Sharded fleet execution: vantages partitioned across processes.

A fleet campaign's vantage timelines are mutually independent (see
:mod:`repro.vantage.campaign`), so the fleet partitions cleanly: give
each shard a *seeded topology replica* (regenerated from the same
:class:`repro.topology.internet.InternetConfig`, hence identical down
to every fault seed and dynamics calendar), let it run only its
vantages' lanes, and merge the partial :class:`FleetResult`s in
canonical vantage order.  On topologies without order-sensitive
randomness (no per-packet balancers, no loss) the merged result is
byte-identical to the single-process run — same routes, same
timestamps, same strategy forensics — which :meth:`FleetResult.signature`
makes checkable in one comparison.

Two backends:

- ``processes=False`` (default) runs the shards sequentially in this
  process — same replicas, same isolation, no pickling constraints;
- ``processes=True`` fans the shards out over a
  :mod:`multiprocessing` pool.  Everything crossing the process
  boundary (the configs, the optional ``strategy_builder``, the
  results) must pickle, so ``strategy_builder`` has to be a
  module-level callable — :func:`mda_strategy_builder` is the stock
  one.

Passing ``runtime=`` (a :class:`repro.runtime.RuntimeOptions`) or
``journal_path=`` routes either backend through the
:class:`repro.runtime.ShardSupervisor` instead: worker crashes, hangs,
and lost results are retried under seeded backoff, an exhausted
shard's vantages are reassigned to fresh single-vantage workers, and
whatever still fails is *excluded* — the merged result carries a
:class:`repro.runtime.DegradationReport` instead of the run dying.
Because shard results are pure functions of their
:class:`FleetShardTask`, any recovery schedule merges to the same
bytes as the unfaulted run.
"""

from __future__ import annotations

import multiprocessing
from dataclasses import dataclass
from typing import Callable, Optional, Sequence

from repro.errors import CampaignError
from repro.measurement.destinations import (
    select_pingable_destinations,
    split_among_workers,
)
from repro.topology.internet import InternetConfig, generate_internet
from repro.vantage.campaign import FleetCampaign, FleetConfig, FleetResult


def mda_strategy_builder(campaign: FleetCampaign) -> Callable:
    """The stock picklable ``strategy_builder``: an MDA census."""
    return campaign.mda_strategy_factory()


def mda_lite_strategy_builder(campaign: FleetCampaign) -> Callable:
    """Picklable ``strategy_builder`` for an MDA-Lite census."""
    return campaign.mda_lite_strategy_factory()


@dataclass
class FleetShardTask:
    """Everything one shard needs to rebuild its world and run.

    Picklable by construction: configs are plain dataclasses,
    ``vantage_ids`` plain ints, and ``strategy_builder`` (when set) a
    module-level callable invoked *inside* the shard as
    ``strategy_builder(campaign) -> strategy_factory``.
    """

    internet: InternetConfig
    fleet: FleetConfig
    vantage_ids: list[int]
    #: Pingable pre-screen truncation (None keeps all).
    max_destinations: Optional[int] = None
    #: Seed of the destination shuffle; defaults to the fleet seed.
    destination_seed: Optional[int] = None
    strategy_builder: Optional[Callable] = None
    #: Install a :class:`repro.obs.MetricsRegistry` on the shard's
    #: replica network before the campaign is built, so every layer
    #: binds instrumented children.  The shard's snapshot rides back on
    #: its partial :class:`FleetResult` and merges client-disjointly.
    metrics: bool = False
    #: Ring capacity for a :class:`repro.obs.ProbeTracer` on the
    #: replica network; 0 (default) disables tracing.
    trace_capacity: int = 0


def materialize_shard(task: FleetShardTask) -> FleetCampaign:
    """Build a shard's campaign on a fresh seeded topology replica."""
    topology = generate_internet(task.internet)
    seed = (task.destination_seed if task.destination_seed is not None
            else task.fleet.seed)
    destinations = select_pingable_destinations(
        topology.network, topology.source,
        topology.destination_addresses,
        count=task.max_destinations, seed=seed)
    # Observability is installed *after* the pingable pre-screen: the
    # pre-screen probes from ``topology.source`` replay in every shard
    # replica, so counting them would break the merged-snapshot ==
    # single-process guarantee.  Metrics cover the campaign proper.
    if task.metrics:
        from repro.obs.registry import MetricsRegistry

        topology.network.metrics = MetricsRegistry()
    if task.trace_capacity > 0:
        from repro.obs.tracing import ProbeTracer

        topology.network.tracer = ProbeTracer(
            capacity=task.trace_capacity)
    campaign = FleetCampaign(
        topology.network, topology.sources, destinations,
        config=task.fleet, vantage_ids=task.vantage_ids)
    if task.strategy_builder is not None:
        campaign.strategy_factory = task.strategy_builder(campaign)
    return campaign


def run_shard(task: FleetShardTask) -> FleetResult:
    """Run one shard to completion (the process-pool work function)."""
    return materialize_shard(task).run()


def plan_shards(n_vantages: int, shards: int) -> list[list[int]]:
    """Partition vantage ids across shards, round-robin.

    The same ``split_among_workers`` rule the campaign layer uses for
    destinations — and like there, a shard may come up empty when
    there are more shards than vantages (it is simply dropped).
    """
    if shards < 1:
        raise CampaignError(f"need at least one shard: {shards}")
    return [share for share
            in split_among_workers(list(range(n_vantages)), shards)
            if share]


def run_fleet(
    internet: InternetConfig,
    fleet: FleetConfig | None = None,
    max_destinations: Optional[int] = None,
    destination_seed: Optional[int] = None,
    strategy_builder: Optional[Callable] = None,
    metrics: bool = False,
    trace_capacity: int = 0,
) -> FleetResult:
    """Single-process reference execution: all vantages, one scheduler."""
    fleet = fleet or FleetConfig()
    task = FleetShardTask(
        internet=internet, fleet=fleet,
        vantage_ids=list(range(internet.n_vantages)),
        max_destinations=max_destinations,
        destination_seed=destination_seed,
        strategy_builder=strategy_builder,
        metrics=metrics, trace_capacity=trace_capacity)
    return run_shard(task)


def run_fleet_sharded(
    internet: InternetConfig,
    fleet: FleetConfig | None = None,
    shards: int = 2,
    processes: bool = False,
    max_destinations: Optional[int] = None,
    destination_seed: Optional[int] = None,
    strategy_builder: Optional[Callable] = None,
    metrics: bool = False,
    trace_capacity: int = 0,
    runtime=None,
    journal_path=None,
) -> FleetResult:
    """Partition the fleet's vantages over ``shards`` replicas and merge.

    ``runtime`` (a :class:`repro.runtime.RuntimeOptions`) or
    ``journal_path`` switches from the bare pool to the supervised
    executor — see :func:`run_fleet_supervised`.
    """
    fleet = fleet or FleetConfig()
    tasks = [
        FleetShardTask(
            internet=internet, fleet=fleet, vantage_ids=vantage_ids,
            max_destinations=max_destinations,
            destination_seed=destination_seed,
            strategy_builder=strategy_builder,
            metrics=metrics, trace_capacity=trace_capacity)
        for vantage_ids in plan_shards(internet.n_vantages, shards)
    ]
    if runtime is not None or journal_path is not None:
        return run_fleet_supervised(
            tasks, processes=processes, runtime=runtime,
            journal_path=journal_path)
    if processes and len(tasks) > 1:
        methods = multiprocessing.get_all_start_methods()
        context = multiprocessing.get_context(
            "fork" if "fork" in methods else "spawn")
        with context.Pool(processes=len(tasks)) as pool:
            parts = pool.map(run_shard, tasks)
    else:
        parts = [run_shard(task) for task in tasks]
    return FleetResult.merge(parts)


# -- supervised execution -----------------------------------------------
def fleet_shard_specs(tasks: Sequence[FleetShardTask]) -> list:
    """Wrap shard tasks as supervisor :class:`repro.runtime.ShardSpec`s.

    Keys name the shard by its vantages (``shard-v0-1``), so the same
    plan always produces the same keys — the property journal resume
    and seeded chaos plans both rely on.
    """
    from repro.runtime import ShardSpec

    return [
        ShardSpec(
            key="shard-v" + "-".join(str(v) for v in task.vantage_ids),
            task=task, vantage_ids=list(task.vantage_ids))
        for task in tasks
    ]


def validate_fleet_shard(task: FleetShardTask,
                         result: FleetResult) -> None:
    """Reject a result that does not belong to ``task``'s vantages."""
    got = sorted(v.index for v in result.vantages)
    want = sorted(task.vantage_ids)
    if got != want:
        raise CampaignError(
            f"shard result covers vantages {got}, task owns {want}: "
            "refusing to merge a wrong-shard result")


def split_fleet_spec(spec) -> list:
    """Reassign an exhausted shard: one fresh task per vantage.

    Shard results are pure functions of their tasks, so regrouping a
    shard's vantages into singleton tasks changes nothing about the
    merged bytes — only which worker computes them.
    """
    from dataclasses import replace

    from repro.runtime import ShardSpec

    return [
        ShardSpec(
            key=f"{spec.key}/v{vantage_id}",
            task=replace(spec.task, vantage_ids=[vantage_id]),
            vantage_ids=[vantage_id])
        for vantage_id in spec.vantage_ids
    ]


def fleet_run_identity(tasks: Sequence[FleetShardTask]) -> str:
    """The journal-binding digest of a sharded fleet run.

    Covers everything that determines the run's bytes: both configs,
    the shard plan, the destination knobs, and the strategy builder's
    name.  A resume against a journal written under any other
    description is refused.
    """
    from dataclasses import asdict

    from repro.runtime import run_identity

    first = tasks[0]
    builder = first.strategy_builder
    return run_identity({
        "kind": "fleet",
        "internet": asdict(first.internet),
        "fleet": asdict(first.fleet),
        "plan": [list(task.vantage_ids) for task in tasks],
        "max_destinations": first.max_destinations,
        "destination_seed": first.destination_seed,
        "strategy_builder": getattr(builder, "__name__", None),
        "metrics": first.metrics,
        "trace_capacity": first.trace_capacity,
    })


def run_fleet_supervised(
    tasks: Sequence[FleetShardTask],
    processes: bool = False,
    runtime=None,
    journal_path=None,
    registry=None,
) -> FleetResult:
    """Run prepared shard tasks under the fault-tolerant supervisor.

    The merged result carries the run's
    :class:`repro.runtime.DegradationReport` (when there is anything
    to report) on :attr:`FleetResult.degradation`, and — when shard
    metrics are enabled — the supervisor's ``repro_runtime_*`` series
    merged into :attr:`FleetResult.metrics`.
    """
    from repro.runtime import RunJournal, RuntimeOptions, ShardSupervisor

    if not tasks:
        raise CampaignError("no shard tasks to supervise")
    runtime = runtime or RuntimeOptions()
    journal = None
    if journal_path is not None:
        journal = RunJournal(journal_path, fleet_run_identity(tasks))
    coordinator = registry
    if coordinator is None and tasks[0].metrics:
        from repro.obs.registry import MetricsRegistry

        coordinator = MetricsRegistry()
    supervised = ShardSupervisor(
        fleet_shard_specs(tasks), run_shard,
        processes=processes, options=runtime,
        validate=validate_fleet_shard, split=split_fleet_spec,
        journal=journal, registry=coordinator).execute()
    merged = FleetResult.merge(supervised.results)
    merged.degradation = supervised.report
    if coordinator is not None and registry is None:
        from repro.obs.registry import MetricsSnapshot

        snapshots = [s for s in (merged.metrics, coordinator.snapshot())
                     if s is not None]
        merged.metrics = MetricsSnapshot.merge(snapshots)
    return merged
