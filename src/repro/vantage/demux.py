"""Reply routing for many vantage points over one delivery buffer.

:meth:`repro.sim.network.Network.deliveries` pops *every* due delivery
and, when filtered to one node, discards the rest — the right stance
for a lone vantage point (packets addressed to a socket nobody holds
open), and exactly wrong for a fleet: vantage A's poll would silently
eat vantage B's replies.  :class:`ReplyDemux` is the fix: it pops the
network buffer once and routes each delivery to the inbox of the host
it was addressed to, discarding only deliveries for hosts no fleet
member registered.

:class:`VantageSocket` is the per-vantage non-blocking socket over that
demux — the same contract as
:class:`repro.engine.asyncsocket.AsyncProbeSocket` (``send_nowait`` /
``flush`` / ``poll``), but ``poll`` drains the shared demux and then
surfaces only its own host's arrivals, in global arrival order.  A
response duplicated by the network reaches its destination host's
inbox once per copy and no other inbox ever — duplication stays
per-vantage by construction.
"""

from __future__ import annotations

from collections import deque

from repro.engine.asyncsocket import AsyncProbeSocket
from repro.obs.registry import NULL_CHILD, active_registry
from repro.sim.endhost import MeasurementHost
from repro.sim.network import Delivery, Network
from repro.sim.socketapi import DEFAULT_TIMEOUT, ProbeResponse


class ReplyDemux:
    """Route buffered network deliveries to per-host inboxes.

    One instance per fleet.  Hosts register once (via
    :class:`VantageSocket`); each :meth:`drain` call pops every network
    delivery due by the horizon and appends it to the addressee's
    inbox.  Pops happen in the network buffer's ``(arrival, submission
    sequence)`` order, so every inbox is itself arrival-ordered and
    deterministic.
    """

    def __init__(self, network: Network) -> None:
        self.network = network
        self._inboxes: dict[str, deque] = {}
        #: Deliveries dropped because no fleet member owned the
        #: addressee — diagnostics for tests and reports.
        self.discarded = 0
        registry = active_registry(network)
        self._m_discarded = (None if registry is None else registry.counter(
            "repro_demux_discarded_total",
            "Deliveries dropped for unregistered addressees, per client.",
            ("client",)))

    def register(self, host: MeasurementHost) -> deque:
        """Open (or return) the inbox routing ``host``'s deliveries."""
        return self._inboxes.setdefault(host.name, deque())

    def drain(self, until: float | None = None) -> None:
        """Pop due deliveries once and route them by receiving host."""
        for arrival, delivery in self.network.deliveries(until=until):
            inbox = self._inboxes.get(delivery.node.name)
            if inbox is None:
                self.discarded += 1
                if self._m_discarded is not None:
                    self._m_discarded.labels(delivery.packet.dst).inc()
            else:
                inbox.append((arrival, delivery))

    def deliver(self, host_name: str, arrival: float,
                delivery: Delivery) -> None:
        """Force a delivery into ``host_name``'s inbox directly.

        Test hook for adversarial scenarios (a reply surfacing at the
        wrong vantage's socket); normal traffic goes through
        :meth:`drain`.
        """
        self._inboxes[host_name].append((arrival, delivery))


class VantageSocket(AsyncProbeSocket):
    """A fleet member's non-blocking socket: own sends, demuxed polls."""

    def __init__(
        self,
        network: Network,
        host: MeasurementHost,
        demux: ReplyDemux,
        timeout: float = DEFAULT_TIMEOUT,
    ) -> None:
        super().__init__(network, host, timeout=timeout)
        self.demux = demux
        self._inbox = demux.register(host)
        registry = active_registry(network)
        self._obs_on = registry is not None
        self._m_wrong_vantage = NULL_CHILD if registry is None else (
            registry.counter(
                "repro_demux_wrong_vantage_total",
                "Replies surfacing at a socket they were not addressed "
                "to, per polling client.",
                ("client",)).labels(str(host.address)))

    def poll(self, until: float | None = None) -> list[ProbeResponse]:
        """Responses that reached *this* vantage point by ``until``.

        Drains the shared demux first (routing every fleet member's due
        deliveries to their inboxes), then returns this host's arrivals
        up to the horizon.  Response construction matches the plain
        async socket: zero-copy packet, wire bytes in ``raw``, ``rtt``
        the walk's elapsed time.
        """
        horizon = self.network.clock.now if until is None else until
        self.demux.drain(until=horizon)
        responses: list[ProbeResponse] = []
        address = self.host.address
        while self._inbox and self._inbox[0][0] <= horizon:
            arrival, delivery = self._inbox.popleft()
            if self._obs_on and delivery.packet.dst != address:
                # A reply in this inbox that is not addressed to this
                # vantage can only come from a mis-routed injection
                # (the deliver() test hook or a buggy demux): count it
                # before surfacing — the scheduler's socket fence will
                # refuse the claim.
                self._m_wrong_vantage.inc()
            responses.append(ProbeResponse(
                packet=delivery.packet,
                raw=delivery.packet.build(),
                rtt=delivery.elapsed,
                received_at=arrival,
            ))
        # responses_received flows to the metrics child through the
        # collector registered by the base socket.
        self.responses_received += len(responses)
        return responses
