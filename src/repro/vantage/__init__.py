"""Multi-vantage fleets: N measurement hosts on one simulated clock.

The paper measures from two vantage points and compares anomaly rates
per source (Sec. 3); this package makes that a first-class, scalable
workload:

- :mod:`repro.vantage.demux` — the reply demux that routes buffered
  network deliveries to per-host inboxes, and the per-vantage
  non-blocking socket over it;
- :mod:`repro.vantage.fleet` — :class:`VantageFleet`, the bundle of
  per-vantage sockets sharing one demux;
- :mod:`repro.vantage.campaign` — :class:`FleetCampaign`, which runs
  the Sec. 3 paired-trace protocol (or any strategy factory) from
  every vantage concurrently on one
  :class:`repro.engine.scheduler.ProbeScheduler`, producing a
  per-vantage :class:`FleetResult`;
- :mod:`repro.vantage.sharding` — sharded execution on seeded topology
  replicas (inline or process pool) with deterministic merging.

Cross-vantage analysis (union graphs, side-by-side anomaly tables,
coverage) lives in :mod:`repro.core.fleetview`.
"""

from repro.vantage.campaign import (
    FleetCampaign,
    FleetConfig,
    FleetResult,
    VantageOutcome,
)
from repro.vantage.demux import ReplyDemux, VantageSocket
from repro.vantage.fleet import VantageFleet
from repro.vantage.sharding import (
    FleetShardTask,
    materialize_shard,
    mda_lite_strategy_builder,
    mda_strategy_builder,
    plan_shards,
    run_fleet,
    run_fleet_sharded,
    run_shard,
)

__all__ = [
    "FleetCampaign",
    "FleetConfig",
    "FleetResult",
    "FleetShardTask",
    "ReplyDemux",
    "VantageFleet",
    "VantageOutcome",
    "VantageSocket",
    "materialize_shard",
    "mda_lite_strategy_builder",
    "mda_strategy_builder",
    "plan_shards",
    "run_fleet",
    "run_fleet_sharded",
    "run_shard",
]
