"""The fleet campaign: one measurement, many vantage points.

The paper measures from two sources and compares anomaly rates per
source (Sec. 3); :class:`FleetCampaign` generalises that workload to N
vantage points probing over one shared simulated clock.  Every owned
vantage contributes ``workers`` lanes to a single
:class:`repro.engine.scheduler.ProbeScheduler`; each lane runs the
Sec. 3 paired-trace protocol (Paris first, classic second, identical
timing) — plus any extra :class:`repro.probing.ProbeStrategy` the
caller's factory supplies — against the vantage's share of the
destination list, round after round.

**Timeline semantics.**  Lanes cycle continuously: a worker starts its
round ``r + 1`` the moment it finishes round ``r`` (the regime of the
paper's 32 always-busy processes), so there is *no cross-vantage
barrier anywhere* — each vantage's timeline is a pure function of the
topology, its own lane contents, and the shared clock's origin.  On
topologies without order-sensitive randomness (no per-packet
balancers, no loss), that independence is exact, which is what makes
sharded execution (:mod:`repro.vantage.sharding`) reproduce the
single-process result byte for byte: a shard replays exactly the lanes
its vantages would have run, on a seeded topology replica, and the
merge is pure concatenation in canonical vantage order.

Per-vantage isolation inside the shared scheduler:

- every lane probes through its vantage's
  :class:`repro.vantage.demux.VantageSocket` (replies demuxed by
  receiving host, claims fenced per socket);
- horizon-hint memos are per vantage — one vantage's halt depths never
  pace another's traces;
- timeout policies are per vantage, so an adaptive estimator only ever
  sees its own vantage's RTT samples.

Per-trace flows derive from (round, destination position) ordinals
exactly as the single-vantage campaign's do — every vantage probes a
given (round, destination, tool) with the same transport flow from its
own source address, the configuration the Sec. 3 comparison wants.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field
from typing import Callable, Iterable, Optional, Sequence

from repro.core.route import MeasuredRoute
from repro.engine.scheduler import (
    DEFAULT_WINDOW,
    AdaptiveTimeout,
    FixedTimeout,
    ProbeScheduler,
    StrategySpec,
    TraceSpec,
)
from repro.errors import CampaignError
from repro.measurement.campaign import (
    CampaignResult,
    RoundRecord,
    StrategyOutcome,
    merge_campaign_results,
)
from repro.measurement.destinations import split_among_workers
from repro.measurement.storage import (
    route_to_dict,
    strategy_result_to_jsonable,
)
from repro.net.inet import IPv4Address
from repro.probing.mda import MdaStrategy
from repro.probing.mdalite import MdaLiteStrategy
from repro.probing.strategy import ProbeStrategy
from repro.sim.endhost import MeasurementHost
from repro.sim.network import Network
from repro.tracer.base import TracerouteOptions
from repro.tracer.classic import ClassicTraceroute
from repro.tracer.paris import ParisTraceroute
from repro.vantage.fleet import VantageFleet

#: Destination assignment modes: every vantage probes the full list
#: (the paper's per-source comparison) or a disjoint share of it (the
#: throughput axis).
ASSIGNMENTS = ("replicate", "shard")

#: Timeout policy choices, materialised per vantage.
TIMEOUT_POLICIES = ("fixed", "adaptive")


@dataclass
class FleetConfig:
    """Fleet campaign parameters; trace defaults mirror the paper's."""

    rounds: int = 1
    #: Worker lanes *per vantage*.
    workers: int = 8
    timeout: float = 2.0
    min_ttl: int = 2
    max_ttl: int = 39
    max_consecutive_stars: int = 8
    probes_per_hop: int = 1
    paris_method: str = "udp"
    classic_method: str = "udp"
    classic_pid_base: int = 4242
    #: Extra pacing after each trace, seconds (0 = reply-paced only).
    inter_trace_delay: float = 0.0
    seed: int = 0
    #: In-flight probes per trace (the fleet always runs the event
    #: engine; 1 approximates stop-and-wait pacing).
    window: int = DEFAULT_WINDOW
    #: "replicate" (every vantage probes every destination) or "shard"
    #: (the list is split across vantages, ``split_among_workers``-style).
    assignment: str = "replicate"
    #: "fixed" (the paper's flat wait) or "adaptive" (RFC 6298-style,
    #: one estimator per vantage).
    timeout_policy: str = "fixed"
    #: Adaptive policy floor, seconds (its ceiling is ``timeout``).
    adaptive_floor: float = 0.1

    def __post_init__(self) -> None:
        if self.assignment not in ASSIGNMENTS:
            raise CampaignError(
                f"assignment must be one of {ASSIGNMENTS}, "
                f"not {self.assignment!r}")
        if self.timeout_policy not in TIMEOUT_POLICIES:
            raise CampaignError(
                f"timeout_policy must be one of {TIMEOUT_POLICIES}, "
                f"not {self.timeout_policy!r}")
        if self.rounds < 1:
            raise CampaignError(f"need at least one round: {self.rounds}")
        if self.workers < 1:
            raise CampaignError(f"need at least one worker: {self.workers}")
        if self.window < 1:
            raise CampaignError(
                f"window must be at least 1, got {self.window}")

    def options(self) -> TracerouteOptions:
        return TracerouteOptions(
            min_ttl=self.min_ttl,
            max_ttl=self.max_ttl,
            probes_per_hop=self.probes_per_hop,
            max_consecutive_stars=self.max_consecutive_stars,
        )

    def make_timeout_policy(self):
        """A fresh per-vantage timeout policy instance."""
        if self.timeout_policy == "adaptive":
            return AdaptiveTimeout(ceiling=self.timeout,
                                   floor=self.adaptive_floor)
        return FixedTimeout(self.timeout)


@dataclass
class VantageOutcome:
    """One vantage point's campaign, with its fleet coordinates."""

    index: int
    name: str
    address: IPv4Address
    destinations: list[IPv4Address]
    result: CampaignResult


@dataclass
class FleetResult:
    """Everything a fleet campaign produced, per vantage.

    ``vantages`` holds one :class:`VantageOutcome` per vantage that
    actually ran, in fleet-index order.  A sharded execution produces
    one partial ``FleetResult`` per shard; :meth:`merge` recombines
    them — and because every field (routes, rounds, counters,
    ``strategy_results`` with all their forensics) travels inside the
    per-vantage :class:`repro.measurement.campaign.CampaignResult`,
    nothing is lost on the way through a shard boundary.
    """

    destinations: list[IPv4Address] = field(default_factory=list)
    vantages: list[VantageOutcome] = field(default_factory=list)
    #: :class:`repro.obs.MetricsSnapshot` of the run's registry, when
    #: metrics were enabled (merged across shards by :meth:`merge`).
    #: Deliberately excluded from :meth:`to_dict` / :meth:`signature`:
    #: observability must never alter the inference artifacts it
    #: observes.
    metrics: object = None
    #: Probe-lifecycle spans from the run's tracer (merged and
    #: canonically ordered across shards); empty when tracing is off.
    #: Excluded from the signature like ``metrics``.
    spans: list = field(default_factory=list)
    #: :class:`repro.runtime.degradation.DegradationReport` stamped by a
    #: supervised execution (None on clean unsupervised runs).  Like
    #: ``metrics`` it is operational metadata and never enters
    #: :meth:`to_dict` / :meth:`signature` — a degraded run differs in
    #: bytes because vantages are *missing*, not because it is labeled.
    degradation: object = None

    def vantage(self, index: int) -> VantageOutcome:
        for outcome in self.vantages:
            if outcome.index == index:
                return outcome
        raise CampaignError(f"no vantage {index} in this result")

    @property
    def labels(self) -> list[str]:
        return [v.name for v in self.vantages]

    def routes_by_vantage(self) -> dict[str, list[MeasuredRoute]]:
        """Vantage name -> its measured routes (fleet order)."""
        return {v.name: v.result.routes for v in self.vantages}

    def destinations_by_vantage(self) -> dict[str, list[IPv4Address]]:
        return {v.name: v.destinations for v in self.vantages}

    def merged(self) -> CampaignResult:
        """One flat campaign result across the whole fleet."""
        return merge_campaign_results(v.result for v in self.vantages)

    @classmethod
    def merge(cls, parts: Iterable["FleetResult"]) -> "FleetResult":
        """Recombine per-shard partial results deterministically."""
        parts = list(parts)
        if not parts:
            raise CampaignError("nothing to merge")
        merged = cls(destinations=list(parts[0].destinations))
        for part in parts:
            if part.destinations != merged.destinations:
                raise CampaignError(
                    "shards disagree on the destination list")
            merged.vantages.extend(part.vantages)
        merged.vantages.sort(key=lambda v: v.index)
        indices = [v.index for v in merged.vantages]
        if len(set(indices)) != len(indices):
            raise CampaignError(
                f"vantage appears in more than one shard: {indices}")
        snapshots = [p.metrics for p in parts if p.metrics is not None]
        if snapshots:
            from repro.obs.registry import MetricsSnapshot

            merged.metrics = MetricsSnapshot.merge(snapshots)
        spans = [span for part in parts for span in part.spans]
        if spans:
            from repro.obs.tracing import ProbeTracer

            spans.sort(key=ProbeTracer.sort_key)
            merged.spans = spans
        reports = [p.degradation for p in parts
                   if p.degradation is not None]
        if reports:
            from repro.runtime.degradation import merge_reports

            merged.degradation = merge_reports(reports)
        return merged

    # -- canonical serialization ----------------------------------------
    def to_dict(self) -> dict:
        """A canonical JSON-ready form (stable across processes)."""
        return {
            "destinations": [str(d) for d in self.destinations],
            "vantages": [
                {
                    "index": v.index,
                    "name": v.name,
                    "address": str(v.address),
                    "destinations": [str(d) for d in v.destinations],
                    "probes_sent": v.result.probes_sent,
                    "responses_received": v.result.responses_received,
                    "rounds": [
                        {
                            "index": r.index,
                            "started_at": r.started_at,
                            "finished_at": r.finished_at,
                            "traces": r.traces,
                        }
                        for r in v.result.rounds
                    ],
                    "routes": [route_to_dict(r) for r in v.result.routes],
                    "strategies": [
                        {
                            "round": s.round_index,
                            "worker": s.worker,
                            "destination": str(s.destination),
                            "result": strategy_result_to_jsonable(s.result),
                        }
                        for s in v.result.strategy_results
                    ],
                }
                for v in self.vantages
            ],
        }

    def signature(self) -> str:
        """SHA-256 over the canonical serialization.

        Byte-identical results — the sharding determinism guarantee —
        have equal signatures; any lost hop, timestamp, strategy
        product, or ``stop_reason`` changes the digest.
        """
        payload = json.dumps(self.to_dict(), sort_keys=True,
                             separators=(",", ":"))
        return hashlib.sha256(payload.encode("utf-8")).hexdigest()


class FleetCampaign:
    """Drive paired traces from many vantage points concurrently.

    ``sources`` is the *whole* fleet (destination assignment and trace
    ordinals are computed over it, so every execution mode agrees);
    ``vantage_ids`` restricts which vantages this instance actually
    runs — the sharding hook.  ``strategy_factory``, when given, is
    called as ``(vantage, round_index, worker, position, destination,
    started_at) -> ProbeStrategy`` once per (vantage, round,
    destination), after the destination's paired traces.
    """

    def __init__(
        self,
        network: Network,
        sources: Sequence[MeasurementHost],
        destinations: Iterable[IPv4Address],
        config: FleetConfig | None = None,
        strategy_factory: Optional[Callable] = None,
        vantage_ids: Optional[Sequence[int]] = None,
    ) -> None:
        self.network = network
        self.sources = list(sources)
        # Counter fence for repeated campaigns on one network: the
        # lookup gauge publishes this run's resolutions only (see the
        # same fence in :class:`repro.measurement.campaign.CampaignRunner`).
        self._lookup_baseline = network.route_lookups()
        if not self.sources:
            raise CampaignError("a fleet needs at least one vantage point")
        self.destinations = [IPv4Address(d) for d in destinations]
        if not self.destinations:
            raise CampaignError("campaign needs at least one destination")
        self.config = config or FleetConfig()
        if vantage_ids is None:
            self.vantage_ids = list(range(len(self.sources)))
        else:
            self.vantage_ids = sorted(set(int(v) for v in vantage_ids))
            for v in self.vantage_ids:
                if not 0 <= v < len(self.sources):
                    raise CampaignError(
                        f"vantage id {v} out of range for a fleet of "
                        f"{len(self.sources)}")
            if not self.vantage_ids:
                raise CampaignError("vantage_ids selected no vantage")
        self.strategy_factory = strategy_factory

        # Destination assignment over the *full* fleet.
        if self.config.assignment == "shard":
            self._assigned = split_among_workers(self.destinations,
                                                 len(self.sources))
        else:
            self._assigned = [list(self.destinations)
                              for __ in self.sources]

        # Per-vantage plumbing: socket, tools, pacing memo, timeout
        # policy.  Tools are bound to the vantage's socket so builders
        # stamp the right source address.
        self._fleet = VantageFleet(
            network, [self.sources[v] for v in self.vantage_ids],
            timeout=self.config.timeout)
        options = self.config.options()
        self._paris: dict[int, ParisTraceroute] = {}
        self._classic: dict[int, ClassicTraceroute] = {}
        self._policies: dict[int, object] = {}
        self._hints: dict[int, dict] = {}
        self._share_offsets: dict[int, list[int]] = {}
        for slot, v in enumerate(self.vantage_ids):
            socket = self._fleet.sockets[slot]
            self._paris[v] = ParisTraceroute(
                socket, method=self.config.paris_method,
                seed=self.config.seed, options=options)
            self._classic[v] = ClassicTraceroute(
                socket, method=self.config.classic_method,
                pid=self.config.classic_pid_base, fixed_pid=False,
                options=options)
            self._policies[v] = self.config.make_timeout_policy()
            self._hints[v] = {}

    # ------------------------------------------------------------------
    # deterministic per-trace state
    # ------------------------------------------------------------------
    def _offsets_for(self, vantage: int,
                     shares: list[list[IPv4Address]]) -> list[int]:
        offsets, total = [], 0
        for share in shares:
            offsets.append(total)
            total += len(share)
        self._share_offsets[vantage] = offsets
        return offsets

    def _trace_ordinal(self, vantage: int, round_index: int, worker: int,
                       position: int) -> int:
        """Engine-independent serial number of one paired trace.

        Identical to the single-vantage campaign's ordinal over the
        vantage's own destination list, so two vantages replicating the
        list probe a given (round, destination) with the same flow.
        """
        return (round_index * len(self._assigned[vantage])
                + self._share_offsets[vantage][worker] + position)

    def _builders_for(self, vantage: int, round_index: int, worker: int,
                      position: int, destination: IPv4Address):
        ordinal = self._trace_ordinal(vantage, round_index, worker,
                                      position)
        paris, classic = self._paris[vantage], self._classic[vantage]
        return (
            lambda: paris.make_builder(destination, flow_index=ordinal),
            lambda: classic.make_builder(destination, ordinal=ordinal),
        )

    def _bound_strategy(self, vantage: int, round_index: int, worker: int,
                        position: int,
                        destination: IPv4Address) -> Callable:
        def factory(started_at: float) -> ProbeStrategy:
            return self.strategy_factory(vantage, round_index, worker,
                                         position, destination, started_at)

        return factory

    def mda_strategy_factory(
        self,
        alpha: float = 0.05,
        max_flows_per_hop: int = 64,
        max_ttl: int = 30,
        window: int = DEFAULT_WINDOW,
        hop_concurrency: int = 8,
    ) -> Callable:
        """A ``strategy_factory`` running MDA from each vantage.

        Flows come from the vantage's own Paris tool, so the probes
        carry that vantage's source address and deterministic per-flow
        five-tuples.
        """

        def factory(vantage: int, round_index: int, worker: int,
                    position: int, destination: IPv4Address,
                    started_at: float) -> ProbeStrategy:
            paris = self._paris[vantage]
            return MdaStrategy(
                make_builder=lambda flow_index: paris.make_builder(
                    destination, flow_index=flow_index),
                destination=destination,
                alpha=alpha,
                max_flows_per_hop=max_flows_per_hop,
                max_ttl=max_ttl,
                window=window,
                hop_concurrency=hop_concurrency,
                started_at=started_at,
            )

        return factory

    def mda_lite_strategy_factory(
        self,
        alpha: float = 0.05,
        max_flows_per_hop: int = 64,
        max_ttl: int = 30,
        window: int = DEFAULT_WINDOW,
        hop_concurrency: int = 8,
        scout_flows: int = 3,
    ) -> Callable:
        """A ``strategy_factory`` running MDA-Lite from each vantage.

        Same per-vantage flow derivation as :meth:`mda_strategy_factory`;
        only the stopping rule (and its census budget) differs.
        """

        def factory(vantage: int, round_index: int, worker: int,
                    position: int, destination: IPv4Address,
                    started_at: float) -> ProbeStrategy:
            paris = self._paris[vantage]
            return MdaLiteStrategy(
                make_builder=lambda flow_index: paris.make_builder(
                    destination, flow_index=flow_index),
                destination=destination,
                alpha=alpha,
                max_flows_per_hop=max_flows_per_hop,
                max_ttl=max_ttl,
                window=window,
                hop_concurrency=hop_concurrency,
                started_at=started_at,
                scout_flows=scout_flows,
            )

        return factory

    # ------------------------------------------------------------------
    # execution
    # ------------------------------------------------------------------
    def run(self) -> FleetResult:
        """Run every owned vantage's rounds; returns per-vantage results."""
        cfg = self.config
        scheduler = ProbeScheduler(
            self.network,
            self._fleet.sources[0],
            window=cfg.window,
            socket=self._fleet.sockets[0],
        )
        for slot, v in enumerate(self.vantage_ids):
            socket = self._fleet.sockets[slot]
            shares = split_among_workers(self._assigned[v], cfg.workers)
            self._offsets_for(v, shares)
            for worker, share in enumerate(shares):
                if not share:
                    continue
                specs: list = []
                for round_index in range(cfg.rounds):
                    for position, destination in enumerate(share):
                        paris_builder, classic_builder = self._builders_for(
                            v, round_index, worker, position, destination)
                        specs.append(TraceSpec(
                            self._paris[v], destination, paris_builder,
                            meta=(v, round_index)))
                        specs.append(TraceSpec(
                            self._classic[v], destination, classic_builder,
                            meta=(v, round_index)))
                        if self.strategy_factory is not None:
                            specs.append(StrategySpec(
                                factory=self._bound_strategy(
                                    v, round_index, worker, position,
                                    destination),
                                label="fleet-strategy",
                                meta=(v, round_index, worker, destination),
                            ))
                scheduler.add_lane(
                    specs,
                    inter_trace_delay=cfg.inter_trace_delay,
                    socket=socket,
                    timeout_policy=self._policies[v],
                    horizon_hints=self._hints[v],
                )
        outcomes = scheduler.run()
        result = self._assemble(outcomes)
        self._attach_observability(result)
        return result

    def _attach_observability(self, result: FleetResult) -> None:
        """Count per-destination outcomes; attach snapshot and spans."""
        from repro.obs.registry import SCOPE_PROCESS, active_registry
        from repro.obs.tracing import ProbeTracer

        registry = active_registry(self.network)
        if registry is not None:
            # Published once per run (summing every router per transit
            # batch is too slow for the hot flush path).
            registry.gauge(
                "repro_fib_route_lookups",
                "Network-wide LPM resolutions since this campaign "
                "began.",
                (), scope=SCOPE_PROCESS).set(
                    self.network.route_lookups() - self._lookup_baseline)
            outcomes = registry.counter(
                "repro_campaign_traces_total",
                "Completed traces per client, tool, and halt reason.",
                ("client", "tool", "halt"))
            strategies = registry.counter(
                "repro_campaign_strategy_runs_total",
                "Extra per-destination strategy runs, per client.",
                ("client",))
            for vantage in result.vantages:
                client = str(vantage.address)
                for route in vantage.result.routes:
                    outcomes.labels(client, route.tool,
                                    route.halt_reason).inc()
                if vantage.result.strategy_results:
                    strategies.labels(client).inc(
                        len(vantage.result.strategy_results))
            result.metrics = registry.snapshot()
        tracer = getattr(self.network, "tracer", None)
        if tracer is not None:
            spans = tracer.records()
            spans.sort(key=ProbeTracer.sort_key)
            result.spans = spans

    def _assemble(self, outcomes) -> FleetResult:
        per_vantage: dict[int, CampaignResult] = {
            v: CampaignResult(destinations=list(self._assigned[v]))
            for v in self.vantage_ids
        }
        # Outcomes arrive sorted by (lane, entry) — vantage-major, then
        # worker, then each worker's chronological order: the canonical
        # route order every execution mode reproduces.
        for outcome in outcomes:
            spec = outcome.spec
            if isinstance(spec, TraceSpec):
                v, round_index = spec.meta
                per_vantage[v].routes.append(MeasuredRoute.from_result(
                    outcome.result, round_index=round_index))
            else:
                v, round_index, worker, destination = spec.meta
                per_vantage[v].strategy_results.append(StrategyOutcome(
                    round_index=round_index, worker=worker,
                    destination=destination, result=outcome.result))
        result = FleetResult(destinations=list(self.destinations))
        for slot, v in enumerate(self.vantage_ids):
            campaign_result = per_vantage[v]
            campaign_result.rounds = self._round_records(campaign_result)
            socket = self._fleet.sockets[slot]
            campaign_result.probes_sent = socket.probes_sent
            campaign_result.responses_received = socket.responses_received
            source = self.sources[v]
            result.vantages.append(VantageOutcome(
                index=v,
                name=source.name,
                address=source.address,
                destinations=list(self._assigned[v]),
                result=campaign_result,
            ))
        return result

    @staticmethod
    def _round_records(result: CampaignResult) -> list[RoundRecord]:
        """Per-round bookkeeping from trace (and strategy) timestamps.

        Lanes cycle continuously, so a vantage's round ``r`` spans from
        its first round-``r`` trace start to its last round-``r``
        resolution — rounds of different workers may overlap in time.
        """
        bounds: dict[int, list] = {}
        for route in result.routes:
            record = bounds.setdefault(
                route.round_index, [float("inf"), float("-inf"), 0])
            record[0] = min(record[0], route.started_at)
            record[1] = max(record[1],
                            route.started_at + route.trace_duration)
            record[2] += 1
        for outcome in result.strategy_results:
            started = getattr(outcome.result, "started_at", None)
            finished = getattr(outcome.result, "finished_at", None)
            if started is None or finished is None:
                continue
            record = bounds.setdefault(
                outcome.round_index, [float("inf"), float("-inf"), 0])
            record[0] = min(record[0], started)
            record[1] = max(record[1], finished)
        return [
            RoundRecord(index=index, started_at=bounds[index][0],
                        finished_at=bounds[index][1],
                        traces=bounds[index][2])
            for index in sorted(bounds)
        ]
