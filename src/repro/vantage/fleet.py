"""The vantage fleet: N measurement hosts on one simulated clock.

A :class:`VantageFleet` bundles the per-vantage plumbing a multi-source
measurement needs: one :class:`repro.vantage.demux.ReplyDemux` over the
shared network and one :class:`repro.vantage.demux.VantageSocket` per
vantage point, so a single :class:`repro.engine.scheduler.ProbeScheduler`
can drive lanes from many sources concurrently — each lane probing
through its own vantage's socket, each reply routed back to the vantage
it was addressed to.
"""

from __future__ import annotations

from typing import Sequence

from repro.errors import CampaignError
from repro.net.inet import IPv4Address
from repro.sim.endhost import MeasurementHost
from repro.sim.network import Network
from repro.sim.socketapi import DEFAULT_TIMEOUT
from repro.vantage.demux import ReplyDemux, VantageSocket


class VantageFleet:
    """Per-vantage sockets over one shared reply demux."""

    def __init__(
        self,
        network: Network,
        sources: Sequence[MeasurementHost],
        timeout: float = DEFAULT_TIMEOUT,
    ) -> None:
        if not sources:
            raise CampaignError("a fleet needs at least one vantage point")
        names = [host.name for host in sources]
        if len(set(names)) != len(names):
            raise CampaignError(f"duplicate vantage points: {names}")
        self.network = network
        self.sources = list(sources)
        self.demux = ReplyDemux(network)
        self.sockets = [
            VantageSocket(network, host, self.demux, timeout=timeout)
            for host in self.sources
        ]

    def __len__(self) -> int:
        return len(self.sources)

    @property
    def addresses(self) -> list[IPv4Address]:
        """Each vantage point's probe source address, in fleet order."""
        return [host.address for host in self.sources]

    def socket_for(self, index: int) -> VantageSocket:
        """The socket of the ``index``-th vantage."""
        return self.sockets[index]
