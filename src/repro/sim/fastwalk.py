"""The prefix-aggregated transit plane: batched packet walks.

:func:`walk_cohorts` carries a *cohort* of probes — everything every
socket of one scheduler has staged at a single send instant, across
destinations and across vantage points — through the network with cost
proportional to *distinct forwarding decisions*, not to probes:

- route resolutions are shared across destinations through
  :meth:`repro.sim.router.Router.lookup_cached`'s covering-prefix
  aggregation (one FIB walk per forwarding-equivalence region, one
  dict probe for every further destination inside it) and across hops
  through a per-walk (node, destination) memo;
- pure transit is *zoomed*: each traveler crosses its run of plain
  forwarding nodes in one tight loop of integer TTL bookkeeping — no
  per-hop packet copies — and balancer-free lossless router chains are
  memoised as :class:`_Segment` runs that every later traveler toward
  the same destination jumps wholesale (the big win for windowed
  probes and for the response streams converging on each vantage);
- side-effect events — TTL expiry, local delivery, null routes,
  non-router nodes — are parked at the traveler's path position
  (its *round*) and processed round-by-round in a canonical group
  order.

Exactness is preserved by construction rather than by re-implementing
router behaviour:

- only *plain* transit (a :class:`Router` or :class:`NatBox`, TTL ≥ 2,
  destination not local, a forwardable route entry) is zoomed, and the
  zoom reuses :meth:`Router.lookup` semantics (via the FIB trie, proven
  equivalent), :meth:`RouteEntry.choose_egress` semantics,
  :meth:`NatBox.rewrite_outbound`, and :meth:`Link.drops_packet`
  directly; a segment jump replays the recorded per-link delays in hop
  order, so even float accumulation is bit-identical to the hop-wise
  walk;
- every parked event materialises the packet exactly as it would have
  arrived (one ``with_ttl`` copy, byte-identical to iterated
  decrements because IP checksums are computed at serialisation time)
  and hands it to the node's own :meth:`receive`;
- generated responses re-enter the walk as travelers toward the probe
  source and enjoy the same batching on their way back.

**Determinism across cohort compositions.**  Order-sensitive simulator
state falls in two classes.  Shared streams (per-packet balancers, link
loss RNGs) are consumed in walk order, which differs between walkers
and between cohort compositions — exactly the deviation the
pre-aggregation walker already documented, and why the byte-identical
guarantees exclude such topologies.  Per-client state (IP-ID streams,
ICMP token buckets, burst-loss channels, the delivery fault plane) is
where the sharded-fleet guarantee lives, and the batched walk protects
it *structurally*: transit consumes no per-client state at all (and
segment jumps are bit-equal to walking, so *who* warmed a memo can
never matter), while side effects fire only at park-processing time —
ordered by round, then by the canonical ``(node name, ingress index)``
sort of each round's groups, then by bucket append order, which
restricted to one client is a pure function of that client's own
traffic.  One vantage's event sequence is therefore identical whether
or not other vantages' probes share the cohort.  That is the invariant
that lets the scheduler merge all vantages' staged probes into a
single cross-vantage cohort while keeping sharded fleet campaigns
byte-identical to single-process ones, faults included.

The pre-aggregation walker (exact-destination group keys, one
linear-scan resolution per destination, per-probe NAT transit) is
retained behind ``Network.transit_batching = False`` as the calibrated
baseline of ``benchmarks/test_bench_walk_batching.py``.
"""

from __future__ import annotations

from typing import Optional, Sequence

from repro.net.inet import IPv4Address
from repro.net.packet import Packet
from repro.sim.balancer import (
    PerDestinationPolicy,
    PerFlowPolicy,
    PerPacketPolicy,
)
from repro.sim.middlebox import NatBox
from repro.sim.network import (
    MAX_WALK_STEPS,
    Delivery,
    DropRecord,
    Network,
    WalkResult,
)
from repro.sim.node import Deliver, Drop, Interface, Node, Respond, Transmit
from repro.sim.router import Router


from repro.net.ipv4 import IPv4Header

_IP_FIELDS = (
    "src", "dst", "protocol", "identification", "tos", "flags",
    "fragment_offset", "total_length",
)


def _header_with_ttl(ip: IPv4Header, ttl: int) -> IPv4Header:
    """A TTL-replaced header copy without re-validation.

    Field values besides the TTL come from an already-constructed
    header, and the TTL is a walk-maintained counter in [0, 255], so
    ``__post_init__`` has nothing left to catch.  Byte-identical to
    ``ip.with_ttl(ttl)`` (checksums are computed at build time).
    """
    header = IPv4Header.__new__(IPv4Header)
    setattr_ = object.__setattr__
    for name in _IP_FIELDS:
        setattr_(header, name, getattr(ip, name))
    setattr_(header, "ttl", ttl)
    return header


class _Traveler:
    """One packet in flight, with its TTL tracked as a plain integer."""

    __slots__ = ("packet", "ttl", "delay", "steps", "round", "flows")

    def __init__(self, packet: Packet, ttl: int, delay: float, steps: int,
                 round_: int = 0) -> None:
        self.packet = packet
        self.ttl = ttl
        self.delay = delay
        self.steps = steps
        #: Path position: how many links this traveler has crossed.  The
        #: batched walk parks side-effect events at their round, which
        #: is what keeps per-client event order composition-independent.
        self.round = round_
        #: Lazily-filled {id(extractor): FlowId} memo.  Lives on the
        #: traveler (not a walk-level id-keyed dict) so a recycled
        #: object id can never inherit another packet's flow.  Reset
        #: when a NAT rewrites the source (flow extractors read it).
        self.flows = None

    def materialize(self) -> Packet:
        """The packet exactly as it arrives at the current node.

        The copy differs from the carried packet only in IP TTL, so the
        transport-bytes memo is adopted: the quoted-payload slice a
        router echoes in its ICMP response is computed once per probe,
        not once per expiry.
        """
        source = self.packet
        if source.ip.ttl == self.ttl:
            return source
        packet = Packet(
            ip=_header_with_ttl(source.ip, self.ttl),
            transport=source.transport,
            payload=source.payload,
        )
        body = source.__dict__.get("_transport_wire")
        if body is not None:
            object.__setattr__(packet, "_transport_wire", body)
        return packet


#: Per-(node, destination) resolution markers: the destination is one
#: of the node's own addresses / draws a per-probe response (no route
#: or a null route).
_LOCAL = object()
_UNROUTED = object()


class _Segment:
    """A memoised run of plain single-egress transit toward one dst.

    Covers the chain from arrival at its keying node to arrival at
    ``end_node`` via ``end_iface``: every intermediate node is a plain
    :class:`Router` (never a NAT box) resolving the destination to a
    single-egress entry over an up, loss-free link — so crossing the
    run consumes no stateful draws at all and later travelers may jump
    it wholesale.  ``delays`` keeps the per-link values in hop order
    (replayed addition-by-addition, so a jumping traveler accumulates
    float delay in exactly the hop-wise order and timestamps stay
    byte-identical).  ``entry`` is the keying node's own route entry,
    the fallback for travelers that cannot jump (TTL expiring inside
    the run, walk budget too tight).
    """

    __slots__ = ("hops", "delays", "end_node", "end_iface", "entry")

    def __init__(self, hops, delays, end_node, end_iface, entry):
        self.hops = hops
        self.delays = delays
        self.end_node = end_node
        self.end_iface = end_iface
        self.entry = entry


class _TransitAccumulator:
    """Network-held transit counters, published on snapshot.

    A walk is built per cohort batch, so even bound-child publishing
    per batch costs measurable wall at campaign rates.  Walks add
    plain ints here instead and :meth:`collect` (registered as a
    registry collector) publishes the running totals — as deltas, so
    repeated snapshots stay correct — when one is actually taken.
    """

    _COUNTERS = ("zooms", "zoom_hops", "seg_jumps", "seg_jump_hops",
                 "segments", "memo_hits", "resolutions")

    __slots__ = _COUNTERS + ("registry", "zoom_length", "_published")

    def __init__(self, registry) -> None:
        self.registry = registry
        for name in self._COUNTERS:
            setattr(self, name, 0)
        #: zoom run length -> occurrences, across every walk so far.
        self.zoom_length: dict = {}
        self._published: dict = {name: 0 for name in self._COUNTERS}
        self._published["zoom_length"] = {}
        registry.add_collector(self.collect)

    def collect(self) -> None:
        """Publish accumulated deltas into the transit plane's series."""
        children = _bind_transit_children(self.registry)
        published = self._published
        for name in self._COUNTERS:
            total = getattr(self, name)
            delta = total - published[name]
            if delta:
                children[name].inc(delta)
                published[name] = total
        done = published["zoom_length"]
        histogram = children["zoom_length"]
        for length in sorted(self.zoom_length):
            delta = self.zoom_length[length] - done.get(length, 0)
            if delta:
                histogram.observe(length, delta)
                done[length] = self.zoom_length[length]


def _bind_transit_children(metrics) -> dict:
    """The transit plane's label-less metric children.

    Called from :meth:`_TransitAccumulator.collect` — a snapshot-time
    path, so the family lookups per call are immaterial.
    """
    from repro.obs.registry import SCOPE_PROCESS

    def counter(name, help_text):
        return metrics.counter(name, help_text, (),
                               scope=SCOPE_PROCESS).labels()

    return {
        "zooms": counter(
            "repro_transit_zooms_total",
            "Zoom runs completed (traveler park events)."),
        "zoom_hops": counter(
            "repro_transit_zoom_hops_total",
            "Node visits crossed inside zoom runs."),
        "seg_jumps": counter(
            "repro_transit_segment_jumps_total",
            "Memoised segment runs replayed in one jump."),
        "seg_jump_hops": counter(
            "repro_transit_segment_jump_hops_total",
            "Hops skipped hop-wise by segment jumps."),
        "segments": counter(
            "repro_transit_segments_recorded_total",
            "Chain-safe runs memoised as segments."),
        "memo_hits": counter(
            "repro_transit_walk_memo_hits_total",
            "Per-hop (node, destination) resolutions served by the "
            "walk memo."),
        "resolutions": counter(
            "repro_transit_walk_resolutions_total",
            "Fresh (node, destination) resolutions this walk "
            "(locality probes and cached route lookups)."),
        "zoom_length": metrics.histogram(
            "repro_transit_zoom_length_hops",
            "Hops advanced per zoom run (segment jumps included).",
            (), scope=SCOPE_PROCESS,
            buckets=(1, 2, 4, 8, 16, 32, 64)).labels(),
    }


def _group_order(key: tuple[Node, Interface]) -> tuple[str, int]:
    """Canonical processing order of a round's side-effect groups.

    Intrinsic to the group key — never derived from which travelers are
    present — so one client's processing order cannot be perturbed by
    another client's traffic sharing the cohort (the fleet-sharding
    determinism argument in the module docstring).
    """
    node, iface = key
    return (node.name, iface.index)


class _BatchedWalk:
    """State for one prefix-aggregated :func:`walk_cohorts` call.

    Pure transit is *zoomed*: each traveler crosses its whole run of
    plain-forwarding nodes in one tight loop whose per-hop cost is a
    couple of dict probes against the walk's (node, destination)
    resolution memo — no per-hop grouping, no packet copies.  Only
    side-effect events (TTL expiry, local delivery, null routes,
    non-router nodes) are parked, at the traveler's path position, in
    per-round ``(node, ingress)`` buckets that :meth:`run` processes in
    round order and canonical group order.
    """

    def __init__(self, network: Network) -> None:
        self.network = network
        self.now = network.clock.now
        self.result = WalkResult()
        #: Parked side-effect events: round -> (node, ingress) -> list.
        self.rounds: dict[
            int, dict[tuple[Node, Interface], list[_Traveler]]] = {}
        #: The round currently being processed; travelers created while
        #: handling a parked event (responses, forwarded expiring
        #: packets) inherit it as their path origin.
        self.current = 0
        # Per-flow bucket decisions, keyed by (policy, flow key, width).
        # Policies are referenced by live route entries for the whole
        # walk, so their ids are stable here.
        self._buckets: dict[tuple[int, bytes, int], int] = {}
        # Per-node destination resolutions for this walk: node -> {dst:
        # _LOCAL | _UNROUTED | RouteEntry}.  Combines the locality check
        # and the route-entry resolution into one probe per hop; walk-
        # scoped (the clock is frozen during a walk), so it is valid
        # even while dynamics overrides bypass the router-level memo.
        self._resolved: dict[Node, dict[IPv4Address, object]] = {}
        # The network's address -> node index (one dict probe decides
        # destination locality — never a scan over nodes).
        self._owner_of = network._address_index
        # Transit-plane observability: counts accumulate in plain ints
        # gated by one local bool inside the zoom loop and publish to
        # the registry once at the end of run() — the hot loop never
        # touches a metric object.  These series are process-scope:
        # which traveler warms a memo depends on cohort composition, so
        # they are advisory and excluded from the deterministic
        # snapshot comparison.
        from repro.obs.registry import active_registry

        self._metrics = active_registry(network)
        self._track = self._metrics is not None
        self._zooms = 0
        self._zoom_hops = 0
        self._zoom_lengths: dict[int, int] = {}
        self._seg_jumps = 0
        self._seg_jump_hops = 0
        self._segments_recorded = 0
        self._memo_hits = 0
        self._walk_resolutions = 0

    # -- walk entry points ----------------------------------------------
    def start_local(self, node: Node, packet: Packet, delay: float,
                    steps: int) -> None:
        """A locally-generated packet: route it out of ``node``."""
        steps += 1
        if steps > MAX_WALK_STEPS:
            self.result.drops.append(
                DropRecord(node, packet, "walk step budget exhausted", delay)
            )
            return
        node_type = type(node)
        if node_type is Router or node_type is NatBox:
            # Router.dispatch with the route resolution memoised (a NAT
            # box dispatches exactly like a router: masquerading only
            # applies to *forwarded* traffic).  No TTL decrement for
            # local traffic.
            entry = node.lookup_cached(packet.ip.dst, self.now)[0]
            if entry is None or entry.unreachable:
                self.result.drops.append(
                    DropRecord(node, packet,
                               "no route for locally generated packet", delay)
                )
                return
            traveler = _Traveler(packet, packet.ip.ttl, delay, steps,
                                 self.current)
            egresses = entry.egresses
            if len(egresses) == 1:
                egress = egresses[0]
            else:
                egress = egresses[self.choose_egress(entry, traveler)]
            self.launch(traveler, egress)
            return
        self.process_actions(node.dispatch(packet, self.network), delay, steps)

    def run(self) -> WalkResult:
        rounds = self.rounds
        while rounds:
            round_ = min(rounds)
            self.current = round_
            buckets = rounds.pop(round_)
            for key in sorted(buckets, key=_group_order):
                node, in_iface = key
                for traveler in buckets[key]:
                    self.receive_one(node, in_iface, traveler)
        if self._track:
            self._publish_metrics()
        return self.result

    def _publish_metrics(self) -> None:
        """Add this walk's transit counts to the network's accumulator.

        A walk is built per cohort batch, so the accumulator lives on
        the *network* (keyed on the registry identity) and defers all
        registry traffic to snapshot time.
        """
        acc = self.network._obs_transit_acc
        if acc is None or acc.registry is not self._metrics:
            acc = _TransitAccumulator(self._metrics)
            self.network._obs_transit_acc = acc
        acc.zooms += self._zooms
        acc.zoom_hops += self._zoom_hops
        acc.seg_jumps += self._seg_jumps
        acc.seg_jump_hops += self._seg_jump_hops
        acc.segments += self._segments_recorded
        acc.memo_hits += self._memo_hits
        acc.resolutions += self._walk_resolutions
        # Network-wide LPM totals are summed over every router, which
        # is far too slow for a per-batch flush: the campaign layer
        # publishes them once per run as ``repro_fib_route_lookups``.
        lengths = self._zoom_lengths
        if lengths:
            totals = acc.zoom_length
            for length, count in lengths.items():
                totals[length] = totals.get(length, 0) + count

    # -- transit ---------------------------------------------------------
    def launch(self, traveler: _Traveler, egress: Interface) -> None:
        """Cross ``egress``'s link (no TTL decrement) and zoom onward.

        The entry point for traffic whose first egress was already
        decided — locally-originated packets and node-emitted
        :class:`Transmit` actions, both of which carry a final TTL.
        """
        link = egress.link
        if link is None:
            self.result.drops.append(
                DropRecord(egress.node, traveler.materialize(),
                           f"{egress.label} has no link", traveler.delay)
            )
            return
        if (not link.up or link.loss_rate > 0.0) and link.drops_packet():
            self.result.drops.append(
                DropRecord(egress.node, traveler.materialize(),
                           f"lost on link at {egress.label}", traveler.delay)
            )
            return
        traveler.delay += link.delay
        traveler.round += 1
        peer = link.peer_of(egress)
        self.zoom(traveler, peer.node, peer)

    def zoom(self, traveler: _Traveler, node: Node,
             in_iface: Interface) -> None:
        """Carry one traveler through plain transit; park at side effects.

        Each iteration is one node visit: resolve the destination
        through the walk memo (locality + route entry in one probe,
        covering-prefix aggregation underneath), pick the egress, apply
        NAT masquerading where the slow path would, and cross the link
        (TTL decrement, loss draw, delay).  The loop exits — parking
        the traveler for exact per-probe :meth:`receive_one` handling —
        on anything that is not plain transit.
        """
        resolved_by_node = self._resolved
        owner_of = self._owner_of
        now = self.now
        drops = self.result.drops
        # Hot-loop state lives in locals (one write-back per exit, not
        # per hop); the destination is computed once per zoom — a NAT
        # rewrite changes the source, never the destination.  Memos key
        # on the raw 32-bit value: an int hashes without the method-
        # call round trip of IPv4Address.__hash__, and this probe runs
        # once per hop of every traveler.
        dst = traveler.packet.ip.dst
        dst_key = dst._value
        steps = traveler.steps
        ttl = traveler.ttl
        delay = traveler.delay
        round_ = traveler.round
        track = self._track
        start_round = round_
        # Segment recording: while this traveler crosses consecutive
        # chain-safe hops, remember the start node's resolution dict,
        # its entry, and the per-link delays; the flush memoises the
        # run as a _Segment for every later traveler toward this
        # destination.
        rec_resolved = None
        rec_entry = None
        rec_delays = None
        while True:
            steps += 1
            if steps > MAX_WALK_STEPS:
                traveler.steps = steps
                traveler.ttl = ttl
                traveler.delay = delay
                traveler.round = round_
                drops.append(
                    DropRecord(node, traveler.materialize(),
                               "walk step budget exhausted", delay)
                )
                return
            node_type = type(node)
            if ((node_type is not Router and node_type is not NatBox)
                    or ttl < 2):
                break
            resolved = resolved_by_node.get(node)
            if resolved is None:
                resolved_by_node[node] = resolved = {}
                state = None
            else:
                state = resolved.get(dst_key)
            if state is None:
                if owner_of.get(dst) is node:
                    state = _LOCAL
                else:
                    entry = node.lookup_cached(dst, now)[0]
                    state = (_UNROUTED
                             if entry is None or entry.unreachable
                             else entry)
                resolved[dst_key] = state
                if track:
                    self._walk_resolutions += 1
            elif track:
                self._memo_hits += 1
            safe = False
            if state.__class__ is _Segment:
                hops = state.hops
                if ttl > hops and steps + hops <= MAX_WALK_STEPS:
                    # Jump the whole recorded run: no expiry strictly
                    # inside (ttl > hops), no budget exhaustion, and by
                    # construction no stateful draws.  Delays replay in
                    # hop order so float accumulation stays exact.
                    for hop_delay in state.delays:
                        delay += hop_delay
                    ttl -= hops
                    steps += hops - 1
                    round_ += hops
                    if track:
                        self._seg_jumps += 1
                        self._seg_jump_hops += hops
                    if rec_delays is not None:
                        # An active recording rides through the jump,
                        # so its flush covers the concatenated run.
                        rec_delays.extend(state.delays)
                    node = state.end_node
                    in_iface = state.end_iface
                    continue
                entry = state.entry
                egresses = entry.egresses
                egress = egresses[0]
                safe = True
            elif state is _LOCAL or state is _UNROUTED:
                # Local delivery / unreachable / no route: the node's
                # own receive keeps the semantics (and responses) exact.
                break
            else:
                entry = state
                egresses = entry.egresses
                if len(egresses) == 1:
                    egress = egresses[0]
                    safe = node_type is Router
                else:
                    traveler.ttl = ttl
                    egress = egresses[self.choose_egress(entry, traveler)]
            if not safe:
                if node_type is NatBox and in_iface is not None \
                        and in_iface is not node.external_interface \
                        and egress is node.external_interface:
                    # Fast transit across the NAT: same rewrite, same
                    # spot (after the egress decision) as NatBox.receive.
                    rewritten = node.rewrite_outbound(traveler.packet)
                    if rewritten is not traveler.packet:
                        traveler.packet = rewritten
                        traveler.flows = None
            link = egress.link
            if link is None:
                if rec_delays:
                    self._flush_segment(rec_resolved, dst_key, rec_entry,
                                        rec_delays, node, in_iface)
                traveler.steps = steps
                traveler.ttl = ttl
                traveler.delay = delay
                traveler.round = round_
                drops.append(
                    DropRecord(node, traveler.materialize(),
                               f"{egress.label} has no link", delay)
                )
                return
            if safe and link.up and link.loss_rate <= 0.0:
                # Chain-safe hop: extend (or open) the recording.
                if rec_delays is None:
                    rec_resolved = resolved
                    rec_entry = entry
                    rec_delays = [link.delay]
                else:
                    rec_delays.append(link.delay)
                ttl -= 1
            else:
                # Unsafe hop (balancer draw, NAT crossing, lossy link):
                # any recording ends at *this* node's arrival.
                if rec_delays:
                    self._flush_segment(rec_resolved, dst_key, rec_entry,
                                        rec_delays, node, in_iface)
                    rec_delays = None
                ttl -= 1
                if ((not link.up or link.loss_rate > 0.0)
                        and link.drops_packet()):
                    traveler.steps = steps
                    traveler.ttl = ttl
                    traveler.delay = delay
                    traveler.round = round_
                    drops.append(
                        DropRecord(node, traveler.materialize(),
                                   f"lost on link at {egress.label}", delay)
                    )
                    return
            delay += link.delay
            round_ += 1
            # link.peer_of, inlined: one identity compare per hop.
            peer = link.b if link.a is egress else link.a
            node = peer.node
            in_iface = peer
        if rec_delays:
            self._flush_segment(rec_resolved, dst_key, rec_entry,
                                rec_delays, node, in_iface)
        traveler.steps = steps
        traveler.ttl = ttl
        traveler.delay = delay
        traveler.round = round_
        if track:
            length = round_ - start_round
            self._zooms += 1
            self._zoom_hops += length
            lengths = self._zoom_lengths
            lengths[length] = lengths.get(length, 0) + 1
        # Park for side-effect processing at this traveler's round.
        buckets = self.rounds.get(round_)
        if buckets is None:
            self.rounds[round_] = buckets = {}
        key = (node, in_iface)
        group = buckets.get(key)
        if group is None:
            buckets[key] = [traveler]
        else:
            group.append(traveler)

    def _flush_segment(self, resolved, dst_key, entry, delays, end_node,
                       end_iface) -> None:
        """Memoise a finished chain recording at its start node.

        Never downgrades: when the start node already carries a
        (possibly longer) segment — a traveler that fell back to
        hop-wise transit because its TTL expires inside the run
        re-records a shorter prefix — the existing memo wins.
        """
        if resolved.get(dst_key).__class__ is not _Segment:
            resolved[dst_key] = _Segment(len(delays), delays, end_node,
                                         end_iface, entry)
            if self._track:
                self._segments_recorded += 1

    def choose_egress(self, entry, traveler: _Traveler) -> int:
        policy = entry.balancer
        n = len(entry.egresses)
        if isinstance(policy, PerFlowPolicy):
            if traveler.flows is None:
                traveler.flows = {}
            # One extraction per (traveler, extractor): every balancer
            # on the path hashing the same fields reuses the FlowId;
            # bucket decisions below stay per policy (salts differ).
            # A subclass overriding flow_of keeps its own per-policy
            # memo slot and its override honoured, exactly as on the
            # per-probe receive path.  Memo keys are ids of objects the
            # policy keeps alive (the extractor / the policy itself),
            # never of transient bound methods.
            if type(policy).flow_of is PerFlowPolicy.flow_of:
                compute = policy.extractor
                memo_key = id(compute)
            else:
                compute = policy.flow_of
                memo_key = id(policy)
            flow = traveler.flows.get(memo_key)
            if flow is None:
                flow = compute(traveler.packet)
                traveler.flows[memo_key] = flow
            bucket_key = (id(policy), flow.key, n)
            index = self._buckets.get(bucket_key)
            if index is None:
                index = policy.choose_flow(flow, n)
                self._buckets[bucket_key] = index
            return index
        if isinstance(policy, (PerPacketPolicy, PerDestinationPolicy)):
            # Neither reads the TTL; the original packet is exact.
            return policy.choose(traveler.packet, n)
        # Unknown policy: materialise so even a TTL-sensitive custom
        # policy sees the packet as it truly arrives.
        return policy.choose(traveler.materialize(), n)

    # -- exact-semantics handoff ----------------------------------------
    def receive_one(self, node: Node, in_iface: Optional[Interface],
                    traveler: _Traveler) -> None:
        packet = traveler.materialize()
        actions = node.receive(packet, in_iface, self.network)
        self.process_actions(actions, traveler.delay, traveler.steps)

    def process_actions(self, actions, delay: float, steps: int) -> None:
        for action in actions:
            if isinstance(action, Transmit):
                packet = action.packet
                # The node already decremented (or chose not to); the
                # link crossing itself must not touch the TTL again.
                traveler = _Traveler(packet, packet.ip.ttl, delay, steps,
                                     self.current)
                self.launch(traveler, action.interface)
            elif isinstance(action, Respond):
                self.start_local(action.node, action.packet,
                                 delay + action.delay, steps)
            elif isinstance(action, Deliver):
                self.result.deliveries.append(
                    Delivery(action.node, action.packet, delay)
                )
            elif isinstance(action, Drop):
                self.result.drops.append(
                    DropRecord(action.node, action.packet, action.reason,
                               delay)
                )
            else:  # pragma: no cover - actions are exhaustive
                raise TypeError(f"unknown action {action!r}")


#: Legacy group key: (node, ingress interface or None, destination).
_GroupKey = tuple[Node, Optional[Interface], IPv4Address]


class _PerDestinationWalk:
    """The pre-aggregation cohort walker (exact-destination groups).

    Kept as the calibrated baseline for the walk-batching benchmarks
    and as the ``Network.transit_batching = False`` escape hatch: group
    keys carry the destination, every (node, destination) resolves its
    route separately (``aggregate=False``, so each new destination is a
    full linear-scan lookup), and NAT boxes always take the per-probe
    ``receive`` path.  Its worklist ordering is the pre-batching one;
    outputs differ from the batched walker only in order-sensitive
    state consumption (documented above).
    """

    def __init__(self, network: Network) -> None:
        self.network = network
        self.now = network.clock.now
        self.result = WalkResult()
        self.groups: dict[_GroupKey, list[_Traveler]] = {}
        self._buckets: dict[tuple[int, bytes, int], int] = {}
        # Destination address -> owning node (None when unowned).
        self._targets: dict[IPv4Address, Optional[Node]] = {}

    # -- walk entry points ----------------------------------------------
    def start_local(self, node: Node, packet: Packet, delay: float,
                    steps: int) -> None:
        """A locally-generated packet: route it out of ``node``."""
        steps += 1
        if steps > MAX_WALK_STEPS:
            self.result.drops.append(
                DropRecord(node, packet, "walk step budget exhausted", delay)
            )
            return
        if type(node) is Router:
            entry = self.lookup(node, packet.ip.dst)
            if entry is None or entry.unreachable:
                self.result.drops.append(
                    DropRecord(node, packet,
                               "no route for locally generated packet", delay)
                )
                return
            traveler = _Traveler(packet, packet.ip.ttl, delay, steps)
            egresses = entry.egresses
            if len(egresses) == 1:
                index = 0
            else:
                index = self.choose_egress(entry, traveler)
            self.traverse(egresses[index], packet.ip.dst, [traveler],
                          decrement=False)
            return
        self.process_actions(node.dispatch(packet, self.network), delay, steps)

    def run(self) -> WalkResult:
        while self.groups:
            key = next(iter(self.groups))
            travelers = self.groups.pop(key)
            self.advance_group(*key, travelers)
        return self.result

    # -- the per-node advance -------------------------------------------
    def advance_group(
        self,
        node: Node,
        in_iface: Optional[Interface],
        dst: IPv4Address,
        travelers: list[_Traveler],
    ) -> None:
        try:
            target = self._targets[dst]
        except KeyError:
            target = self.network.node_owning(dst)
            self._targets[dst] = target
        fast: list[_Traveler] = []
        for traveler in travelers:
            traveler.steps += 1
            if traveler.steps > MAX_WALK_STEPS:
                self.result.drops.append(
                    DropRecord(node, traveler.materialize(),
                               "walk step budget exhausted", traveler.delay)
                )
            elif (type(node) is Router and node is not target
                  and traveler.ttl >= 2):
                fast.append(traveler)
            else:
                self.receive_one(node, in_iface, traveler)
        if not fast:
            return
        entry = self.lookup(node, dst)
        if entry is None or entry.unreachable:
            # Unreachable and no-route probes draw per-probe responses;
            # the router's own code keeps the semantics exact.
            for traveler in fast:
                self.receive_one(node, in_iface, traveler)
            return
        egresses = entry.egresses
        if len(egresses) == 1:
            self.traverse(egresses[0], dst, fast)
            return
        chosen: dict[int, list[_Traveler]] = {}
        for traveler in fast:
            index = self.choose_egress(entry, traveler)
            chosen.setdefault(index, []).append(traveler)
        for index, group in chosen.items():
            self.traverse(egresses[index], dst, group)

    choose_egress = _BatchedWalk.choose_egress

    def traverse(self, iface: Interface, dst: IPv4Address,
                 travelers: list[_Traveler], decrement: bool = True) -> None:
        link = iface.link
        if link is None:
            for traveler in travelers:
                self.result.drops.append(
                    DropRecord(iface.node, traveler.materialize(),
                               f"{iface.label} has no link", traveler.delay)
                )
            return
        peer = link.peer_of(iface)
        survivors: list[_Traveler] = []
        lossless = link.up and link.loss_rate <= 0.0
        for traveler in travelers:
            if decrement:
                traveler.ttl -= 1
            if not lossless and link.drops_packet():
                self.result.drops.append(
                    DropRecord(iface.node, traveler.materialize(),
                               f"lost on link at {iface.label}",
                               traveler.delay)
                )
                continue
            traveler.delay += link.delay
            survivors.append(traveler)
        if survivors:
            self.groups.setdefault((peer.node, peer, dst), []).extend(survivors)

    # -- exact-semantics handoff ----------------------------------------
    receive_one = _BatchedWalk.receive_one

    def process_actions(self, actions, delay: float, steps: int) -> None:
        for action in actions:
            if isinstance(action, Transmit):
                packet = action.packet
                traveler = _Traveler(packet, packet.ip.ttl, delay, steps)
                self.traverse(action.interface, packet.ip.dst, [traveler],
                              decrement=False)
            elif isinstance(action, Respond):
                self.start_local(action.node, action.packet,
                                 delay + action.delay, steps)
            elif isinstance(action, Deliver):
                self.result.deliveries.append(
                    Delivery(action.node, action.packet, delay)
                )
            elif isinstance(action, Drop):
                self.result.drops.append(
                    DropRecord(action.node, action.packet, action.reason,
                               delay)
                )
            else:  # pragma: no cover - actions are exhaustive
                raise TypeError(f"unknown action {action!r}")

    def lookup(self, node: Router, dst: IPv4Address):
        return node.lookup_cached(dst, self.now, aggregate=False)[0]


def walk_cohorts(
    network: Network,
    batches: Sequence[tuple[Node, Sequence[Packet]]],
) -> WalkResult:
    """Walk batches of locally-originated packets to quiescence.

    Each batch is ``(origin node, packets)`` — one vantage point's
    staged probes; the batches share one walk and therefore one transit
    plane.  Semantically equivalent to merging ``network.inject`` per
    packet (modulo the ordering notes in the module docstring); the
    caller applies dynamics first, as :meth:`Network.submit_cohorts`
    does.
    """
    if network.transit_batching:
        walk = _BatchedWalk(network)
    else:
        walk = _PerDestinationWalk(network)
    for at, packets in batches:
        for packet in packets:
            walk.start_local(at, packet, 0.0, 0)
    return walk.run()


def walk_cohort(network: Network, packets: Sequence[Packet],
                at: Node) -> WalkResult:
    """Walk one origin's batch of packets to quiescence.

    The single-vantage entry point kept for callers and tests;
    equivalent to ``walk_cohorts(network, [(at, packets)])``.
    """
    return walk_cohorts(network, [(at, packets)])
