"""Batched packet walks for the event-driven probe engine.

:func:`walk_cohort` carries a *cohort* of probes — everything one
pipelined session has in flight at a single send instant — through the
network in grouped form.  Travelers that sit at the same node, arrived
over the same link, and head for the same destination share the route
lookup and the egress decision; per traveler the transit cost drops to
integer TTL bookkeeping instead of a full packet copy per hop.  That is
where the wall-clock advantage of the pipelined engine over the
stop-and-wait path comes from: the walk itself gets cheaper, not just
the waiting.

Exactness is preserved by construction rather than by re-implementing
router behaviour:

- only *plain* transit (``type(node) is Router``, TTL ≥ 2, destination
  not local, a forwardable route entry) takes the fast path, and that
  path reuses :meth:`Router.lookup`, :meth:`RouteEntry.choose_egress`
  semantics, and :meth:`Link.drops_packet` directly;
- every other case — TTL expiry, hosts, NAT boxes and other Router
  subclasses, unreachable/null routes, fault profiles — materialises
  the packet exactly as it would have arrived (one ``with_ttl`` copy,
  byte-identical to iterated decrements because IP checksums are
  computed at serialisation time) and hands it to the node's own
  :meth:`receive`;
- generated responses re-enter the walk as travelers toward the probe
  source and enjoy the same batching on their way back.

Two deliberate deviations from running each probe through
:meth:`Network.inject` separately, both order-only: per-node IP-ID
counters and stateful draws (per-packet balancers, loss RNGs) are
consumed in cohort order rather than per-probe-walk order, and the
walk-step budget guards each traveler individually.  Per-flow balancer
decisions assume flow extractors do not read the IP TTL — true of every
extractor in :mod:`repro.net.flow` (the paper's finding is that routers
hash addresses, protocol, TOS, and the first transport word).
"""

from __future__ import annotations

from typing import Optional, Sequence

from repro.net.inet import IPv4Address
from repro.net.packet import Packet
from repro.sim.balancer import (
    PerDestinationPolicy,
    PerFlowPolicy,
    PerPacketPolicy,
)
from repro.sim.network import (
    MAX_WALK_STEPS,
    Delivery,
    DropRecord,
    Network,
    WalkResult,
)
from repro.sim.node import Deliver, Drop, Interface, Node, Respond, Transmit
from repro.sim.router import Router


from repro.net.ipv4 import IPv4Header

_IP_FIELDS = (
    "src", "dst", "protocol", "identification", "tos", "flags",
    "fragment_offset", "total_length",
)


def _header_with_ttl(ip: IPv4Header, ttl: int) -> IPv4Header:
    """A TTL-replaced header copy without re-validation.

    Field values besides the TTL come from an already-constructed
    header, and the TTL is a walk-maintained counter in [0, 255], so
    ``__post_init__`` has nothing left to catch.  Byte-identical to
    ``ip.with_ttl(ttl)`` (checksums are computed at build time).
    """
    header = IPv4Header.__new__(IPv4Header)
    setattr_ = object.__setattr__
    for name in _IP_FIELDS:
        setattr_(header, name, getattr(ip, name))
    setattr_(header, "ttl", ttl)
    return header


class _Traveler:
    """One packet in flight, with its TTL tracked as a plain integer."""

    __slots__ = ("packet", "ttl", "delay", "steps", "flows")

    def __init__(self, packet: Packet, ttl: int, delay: float, steps: int) -> None:
        self.packet = packet
        self.ttl = ttl
        self.delay = delay
        self.steps = steps
        #: Lazily-filled {id(policy): FlowId} memo.  Lives on the
        #: traveler (not a walk-level id-keyed dict) so a recycled
        #: object id can never inherit another packet's flow.
        self.flows = None

    def materialize(self) -> Packet:
        """The packet exactly as it arrives at the current node."""
        if self.packet.ip.ttl == self.ttl:
            return self.packet
        return Packet(
            ip=_header_with_ttl(self.packet.ip, self.ttl),
            transport=self.packet.transport,
            payload=self.packet.payload,
        )


#: Group key: (node, ingress interface or None, destination address).
_GroupKey = tuple[Node, Optional[Interface], IPv4Address]


class _CohortWalk:
    """State for one :func:`walk_cohort` call."""

    def __init__(self, network: Network) -> None:
        self.network = network
        self.now = network.clock.now
        self.result = WalkResult()
        self.groups: dict[_GroupKey, list[_Traveler]] = {}
        # Per-flow bucket decisions, keyed by (policy, flow key, width).
        # Policies are referenced by live route entries for the whole
        # walk, so their ids are stable here.
        self._buckets: dict[tuple[int, bytes, int], int] = {}
        # Destination address -> owning node (None when unowned).
        self._targets: dict[IPv4Address, Optional[Node]] = {}

    # -- walk entry points ----------------------------------------------
    def start_local(self, node: Node, packet: Packet, delay: float,
                    steps: int) -> None:
        """A locally-generated packet: route it out of ``node``."""
        steps += 1
        if steps > MAX_WALK_STEPS:
            self.result.drops.append(
                DropRecord(node, packet, "walk step budget exhausted", delay)
            )
            return
        if type(node) is Router:
            # Router.dispatch, with the route lookup memoised: look up,
            # pick an egress (no TTL decrement for local traffic), go.
            entry = self.lookup(node, packet.ip.dst)
            if entry is None or entry.unreachable:
                self.result.drops.append(
                    DropRecord(node, packet,
                               "no route for locally generated packet", delay)
                )
                return
            traveler = _Traveler(packet, packet.ip.ttl, delay, steps)
            egresses = entry.egresses
            if len(egresses) == 1:
                index = 0
            else:
                index = self.choose_egress(entry, traveler)
            self.traverse(egresses[index], packet.ip.dst, [traveler],
                          decrement=False)
            return
        self.process_actions(node.dispatch(packet, self.network), delay, steps)

    def run(self) -> WalkResult:
        while self.groups:
            key = next(iter(self.groups))
            travelers = self.groups.pop(key)
            self.advance_group(*key, travelers)
        return self.result

    # -- the per-node advance -------------------------------------------
    def advance_group(
        self,
        node: Node,
        in_iface: Optional[Interface],
        dst: IPv4Address,
        travelers: list[_Traveler],
    ) -> None:
        try:
            target = self._targets[dst]
        except KeyError:
            target = self.network.node_owning(dst)
            self._targets[dst] = target
        fast: list[_Traveler] = []
        for traveler in travelers:
            traveler.steps += 1
            if traveler.steps > MAX_WALK_STEPS:
                self.result.drops.append(
                    DropRecord(node, traveler.materialize(),
                               "walk step budget exhausted", traveler.delay)
                )
            elif (type(node) is Router and node is not target
                  and traveler.ttl >= 2):
                fast.append(traveler)
            else:
                self.receive_one(node, in_iface, traveler)
        if not fast:
            return
        entry = self.lookup(node, dst)
        if entry is None or entry.unreachable:
            # Unreachable and no-route probes draw per-probe responses;
            # the router's own code keeps the semantics exact.
            for traveler in fast:
                self.receive_one(node, in_iface, traveler)
            return
        egresses = entry.egresses
        if len(egresses) == 1:
            self.traverse(egresses[0], dst, fast)
            return
        chosen: dict[int, list[_Traveler]] = {}
        for traveler in fast:
            index = self.choose_egress(entry, traveler)
            chosen.setdefault(index, []).append(traveler)
        for index, group in chosen.items():
            self.traverse(egresses[index], dst, group)

    def choose_egress(self, entry, traveler: _Traveler) -> int:
        policy = entry.balancer
        n = len(entry.egresses)
        if isinstance(policy, PerFlowPolicy):
            if traveler.flows is None:
                traveler.flows = {}
            flow = traveler.flows.get(id(policy))
            if flow is None:
                flow = policy.flow_of(traveler.packet)
                traveler.flows[id(policy)] = flow
            bucket_key = (id(policy), flow.key, n)
            index = self._buckets.get(bucket_key)
            if index is None:
                index = policy.choose_flow(flow, n)
                self._buckets[bucket_key] = index
            return index
        if isinstance(policy, (PerPacketPolicy, PerDestinationPolicy)):
            # Neither reads the TTL; the original packet is exact.
            return policy.choose(traveler.packet, n)
        # Unknown policy: materialise so even a TTL-sensitive custom
        # policy sees the packet as it truly arrives.
        return policy.choose(traveler.materialize(), n)

    def traverse(self, iface: Interface, dst: IPv4Address,
                 travelers: list[_Traveler], decrement: bool = True) -> None:
        link = iface.link
        if link is None:
            for traveler in travelers:
                self.result.drops.append(
                    DropRecord(iface.node, traveler.materialize(),
                               f"{iface.label} has no link", traveler.delay)
                )
            return
        peer = link.peer_of(iface)
        survivors: list[_Traveler] = []
        lossless = link.up and link.loss_rate <= 0.0
        for traveler in travelers:
            if decrement:
                traveler.ttl -= 1
            if not lossless and link.drops_packet():
                self.result.drops.append(
                    DropRecord(iface.node, traveler.materialize(),
                               f"lost on link at {iface.label}",
                               traveler.delay)
                )
                continue
            traveler.delay += link.delay
            survivors.append(traveler)
        if survivors:
            self.groups.setdefault((peer.node, peer, dst), []).extend(survivors)

    # -- exact-semantics handoff ----------------------------------------
    def receive_one(self, node: Node, in_iface: Optional[Interface],
                    traveler: _Traveler) -> None:
        packet = traveler.materialize()
        actions = node.receive(packet, in_iface, self.network)
        self.process_actions(actions, traveler.delay, traveler.steps)

    def process_actions(self, actions, delay: float, steps: int) -> None:
        for action in actions:
            if isinstance(action, Transmit):
                packet = action.packet
                traveler = _Traveler(packet, packet.ip.ttl, delay, steps)
                # The node already decremented (or chose not to); the
                # link crossing itself must not touch the TTL again.
                self.traverse(action.interface, packet.ip.dst, [traveler],
                              decrement=False)
            elif isinstance(action, Respond):
                self.start_local(action.node, action.packet,
                                 delay + action.delay, steps)
            elif isinstance(action, Deliver):
                self.result.deliveries.append(
                    Delivery(action.node, action.packet, delay)
                )
            elif isinstance(action, Drop):
                self.result.drops.append(
                    DropRecord(action.node, action.packet, action.reason,
                               delay)
                )
            else:  # pragma: no cover - actions are exhaustive
                raise TypeError(f"unknown action {action!r}")

    def lookup(self, node: Router, dst: IPv4Address):
        return node.lookup_cached(dst, self.now)


def walk_cohort(network: Network, packets: Sequence[Packet],
                at: Node) -> WalkResult:
    """Walk a batch of locally-originated packets to quiescence.

    Semantically equivalent to merging ``[network.inject(p, at) for p in
    packets]`` (modulo the ordering notes in the module docstring); the
    caller applies dynamics first, as :meth:`Network.submit_cohort`
    does.
    """
    walk = _CohortWalk(network)
    for packet in packets:
        walk.start_local(at, packet, 0.0, 0)
    return walk.run()
