"""The network container and the packet walk.

:class:`Network` owns nodes, links, a shared :class:`SimClock`, and the
dynamics schedule.  :meth:`Network.inject` performs the walk: starting
from a locally-generated packet at some node, it repeatedly applies
node decisions (forward / answer / drop / deliver) and link traversals
(delay, loss) until no actions remain, then reports what was delivered
where and what was dropped why.

The walk is breadth-first over actions rather than recursive, so a
probe, the Time Exceeded it triggers, and any rewriting that response
undergoes on its way back are all steps of one deterministic loop.
"""

from __future__ import annotations

import heapq
from collections import deque
from dataclasses import dataclass, field
from typing import Iterable, Optional, Sequence

from repro.errors import TopologyError
from repro.net.inet import IPv4Address
from repro.net.packet import Packet
from repro.sim.clock import SimClock
from repro.sim.link import Link
from repro.sim.node import (
    Deliver,
    Drop,
    Interface,
    Node,
    Respond,
    Transmit,
)

#: Safety valve: maximum node visits per injected packet.  TTL bounds
#: well-formed walks long before this; the cap only guards miswired
#: topologies (e.g. a cycle of zero-TTL-forwarding routers).
MAX_WALK_STEPS = 4096


@dataclass
class Delivery:
    """A packet that terminated at a node's local stack."""

    node: Node
    packet: Packet
    elapsed: float


@dataclass
class DropRecord:
    """A packet discarded during the walk, with the reason."""

    node: Node
    packet: Packet
    reason: str
    elapsed: float


@dataclass
class WalkResult:
    """Everything that happened after one injection."""

    deliveries: list[Delivery] = field(default_factory=list)
    drops: list[DropRecord] = field(default_factory=list)

    def delivered_to(self, node: Node) -> list[Delivery]:
        """Deliveries addressed to ``node``."""
        return [d for d in self.deliveries if d.node is node]


class Network:
    """A wired collection of nodes plus simulated time and dynamics."""

    def __init__(self, clock: SimClock | None = None, name: str = "net") -> None:
        self.name = name
        self.clock = clock or SimClock()
        self.nodes: dict[str, Node] = {}
        self.links: list[Link] = []
        # Address -> owning node, maintained by add_node()/link() (the
        # topology-mutation points) so destination-locality checks are
        # one dict probe for every walker — never a scan over nodes.
        self._address_index: dict[IPv4Address, Node] = {}
        self._dynamics: list = []
        #: Cohort-walk mode: True routes :meth:`submit_cohort` /
        #: :meth:`submit_cohorts` through the prefix-aggregated transit
        #: plane (cross-destination grouping, NAT fast transit, merged
        #: vantage cohorts); False falls back to the pre-aggregation
        #: per-destination walker — the calibrated baseline of the
        #: walk-batching benchmarks.
        self.transit_batching = True
        #: Optional delivery-path fault policy (jitter, duplication):
        #: a :class:`repro.faults.DeliveryFaultPlane` applied to every
        #: walk's deliveries before the caller (blocking socket) or the
        #: delivery buffer (async path) sees them.
        self.fault_plane = None
        #: Optional :class:`repro.obs.MetricsRegistry`.  Components
        #: bind their counters at construction time via
        #: :func:`repro.obs.active_registry`; None (the default) keeps
        #: every instrumented path on the no-op fast path.
        self.metrics = None
        #: Optional :class:`repro.obs.ProbeTracer` recording probe
        #: lifecycle spans on this network's simulated clock.
        self.tracer = None
        # Transit-plane metric children bound once per registry — a
        # Transit-plane metrics accumulator filled by the batched
        # walk's publish path (walks are rebuilt per cohort batch, so
        # they cannot carry it themselves).
        self._obs_transit_acc = None
        # Asynchronous delivery buffer: (absolute arrival time, sequence
        # number, Delivery) heap fed by submit()/submit_cohort() and
        # drained by deliveries().  The sequence number keeps the pop
        # order stable for simultaneous arrivals.
        self._pending: list[tuple[float, int, Delivery]] = []
        self._pending_seq = 0

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------
    def add_node(self, node: Node) -> Node:
        """Register a node (its interfaces may be added before or after)."""
        if node.name in self.nodes:
            raise TopologyError(f"duplicate node name: {node.name}")
        self.nodes[node.name] = node
        for interface in node.interfaces:
            self.index_interface(interface)
        return node

    def link(
        self,
        a: Interface,
        b: Interface,
        delay: float = 0.001,
        loss_rate: float = 0.0,
        loss_seed: int = 0,
    ) -> Link:
        """Wire two interfaces together with a new link."""
        for iface in (a, b):
            if iface.link is not None:
                raise TopologyError(f"{iface.label} is already linked")
        link = Link(a=a, b=b, delay=delay, loss_rate=loss_rate,
                    loss_seed=loss_seed)
        a.link = link
        b.link = link
        self.links.append(link)
        self.index_interface(a)
        self.index_interface(b)
        return link

    def index_interface(self, interface: Interface) -> None:
        existing = self._address_index.get(interface.address)
        if existing is not None and existing is not interface.node:
            raise TopologyError(
                f"address {interface.address} assigned to both "
                f"{existing.name} and {interface.node.name}"
            )
        self._address_index[interface.address] = interface.node

    def node_owning(self, address: IPv4Address) -> Optional[Node]:
        """The node owning ``address``, if any (one index probe)."""
        if not isinstance(address, IPv4Address):
            address = IPv4Address(address)
        return self._address_index.get(address)

    def route_lookups(self) -> int:
        """Total LPM resolutions performed by this network's routers.

        Sums :attr:`repro.sim.router.Router.lookup_count` over every
        forwarding node — the metric the walk-batching benchmarks track
        (memo and covering-prefix hits are not counted).
        """
        from repro.sim.router import Router

        return sum(node.lookup_count for node in self.nodes.values()
                   if isinstance(node, Router))

    def reset_counters(self) -> None:
        """Zero every router's LPM counter and the metrics registry.

        The explicit reset path shared by benches and the registry:
        one call between bench legs guarantees neither
        :meth:`route_lookups` nor any registry series carries counts
        over from a previous leg.
        """
        from repro.sim.router import Router

        for node in self.nodes.values():
            if isinstance(node, Router):
                node.reset_counters()
        if self.metrics is not None:
            self.metrics.reset()

    def node(self, name: str) -> Node:
        """Lookup a node by name; raises :class:`TopologyError` if absent."""
        try:
            return self.nodes[name]
        except KeyError:
            raise TopologyError(f"no node named {name!r}") from None

    @property
    def addresses(self) -> set[IPv4Address]:
        """Every interface address in the network."""
        return set(self._address_index)

    # ------------------------------------------------------------------
    # dynamics
    # ------------------------------------------------------------------
    def add_dynamics(self, event) -> None:
        """Register a dynamics event (route change, forwarding loop...)."""
        self._dynamics.append(event)

    def apply_dynamics(self) -> None:
        """Let every registered event update router state for current time.

        Idempotent: events track their own applied/reverted state.
        Called automatically at the start of each :meth:`inject`.
        """
        now = self.clock.now
        for event in self._dynamics:
            event.apply(self, now)

    # ------------------------------------------------------------------
    # the walk
    # ------------------------------------------------------------------
    def inject(self, packet: Packet, at: Node) -> WalkResult:
        """Originate ``packet`` at node ``at`` and walk it to quiescence."""
        self.apply_dynamics()
        result = self.walk([(at, None, packet, 0.0, True)])
        if self.fault_plane is not None:
            self.fault_plane.apply(result, metrics=self.metrics)
        self._count_fault_drops(result)
        return result

    def walk(
        self,
        entries: Sequence[tuple[Node, Optional[Interface], Packet, float, bool]],
        budget: int = MAX_WALK_STEPS,
    ) -> WalkResult:
        """Walk pre-positioned work items to quiescence.

        Each entry is ``(node, in_interface, packet, elapsed,
        locally_generated)`` — the same work-item shape :meth:`inject`
        starts from.  Dynamics are *not* applied here; callers that
        originate fresh traffic (``inject``, ``submit``) do that first.
        """
        result = WalkResult()
        queue: deque[tuple[Node, Optional[Interface], Packet, float, bool]] = deque()
        queue.extend(entries)
        steps = 0
        while queue:
            node, in_iface, pkt, elapsed, local = queue.popleft()
            steps += 1
            if steps > budget:
                result.drops.append(
                    DropRecord(node, pkt, "walk step budget exhausted", elapsed)
                )
                break
            if local:
                actions = node.dispatch(pkt, self)
            else:
                actions = node.receive(pkt, in_iface, self)
            for action in actions:
                if isinstance(action, Transmit):
                    self._traverse(action, elapsed, queue, result)
                elif isinstance(action, Respond):
                    queue.append((action.node, None, action.packet,
                                  elapsed + action.delay, True))
                elif isinstance(action, Deliver):
                    result.deliveries.append(
                        Delivery(action.node, action.packet, elapsed)
                    )
                elif isinstance(action, Drop):
                    result.drops.append(
                        DropRecord(action.node, action.packet, action.reason,
                                   elapsed)
                    )
                else:  # pragma: no cover - actions are exhaustive
                    raise TopologyError(f"unknown action {action!r}")
        return result

    # ------------------------------------------------------------------
    # the asynchronous path (event-driven probe engine)
    # ------------------------------------------------------------------
    def submit(self, packet: Packet, at: Node) -> WalkResult:
        """Originate ``packet`` now; buffer deliveries for later pickup.

        The non-blocking counterpart of :meth:`inject`: the walk still
        happens eagerly (the simulator is untimed between clock
        advances), but instead of the caller consuming deliveries
        immediately, each one is queued with its absolute arrival time
        (now + walk elapsed) and surfaces through :meth:`deliveries`
        once the clock reaches it.  Drops are reported in the returned
        :class:`WalkResult` for diagnostics; deliveries are *only*
        available through the buffer.
        """
        result = self.inject(packet, at)
        self._buffer_deliveries(result)
        return result

    def submit_cohort(self, packets: Sequence[Packet], at: Node) -> WalkResult:
        """Submit a batch of probes sharing one send instant.

        Equivalent to calling :meth:`submit` per packet, but probes
        share forwarding work through :mod:`repro.sim.fastwalk` — the
        optimisation that makes the pipelined engine cheaper in real
        time, not only simulated time.
        """
        return self.submit_cohorts([(at, packets)])

    def submit_cohorts(
        self, batches: Sequence[tuple[Node, Sequence[Packet]]],
    ) -> WalkResult:
        """Submit several origins' staged probes as one send instant.

        The scheduler's flush path: every lane due at one clock instant
        — across destinations and across vantage points — walks the
        network as a single cohort on the prefix-aggregated transit
        plane, whose round-based scheduling keeps each probing client's
        fault/forensics timeline independent of cohort composition (the
        sharded-fleet byte-identity guarantee; see
        :mod:`repro.sim.fastwalk`).  With :attr:`transit_batching` off,
        each origin's batch walks separately through the per-destination
        baseline walker, replicating the pre-aggregation pipeline
        (including its per-walk fault-plane application) exactly.
        """
        from repro.sim.fastwalk import walk_cohorts

        self.apply_dynamics()
        if self.transit_batching:
            result = walk_cohorts(self, batches)
            if self.fault_plane is not None:
                self.fault_plane.apply(result, metrics=self.metrics)
            self._count_fault_drops(result)
            self._buffer_deliveries(result)
            return result
        combined = WalkResult()
        for at, packets in batches:
            result = walk_cohorts(self, [(at, packets)])
            if self.fault_plane is not None:
                self.fault_plane.apply(result, metrics=self.metrics)
            self._count_fault_drops(result)
            self._buffer_deliveries(result)
            combined.deliveries.extend(result.deliveries)
            combined.drops.extend(result.drops)
        return combined

    def _count_fault_drops(self, result: WalkResult) -> None:
        """Attribute burst-loss drops to the soliciting client.

        A Gilbert-Elliott loss channel discards a response inside the
        walk, where nodes have no registry handle; the drop record
        carries the offending probe, whose source is the probing
        client — a per-client fault stream, so the counts are
        deterministic across shard compositions.
        """
        metrics = self.metrics
        if metrics is None or not metrics.enabled:
            return
        family = None
        for drop in result.drops:
            if drop.reason != "response lost (fault profile)":
                continue
            if family is None:
                family = metrics.counter(
                    "repro_fault_response_lost_total",
                    "Responses suppressed by a loss-burst fault profile.",
                    ("node", "client"))
            family.labels(drop.node.name, str(drop.packet.src)).inc()

    def _buffer_deliveries(self, result: WalkResult) -> None:
        now = self.clock.now
        for delivery in result.deliveries:
            heapq.heappush(
                self._pending,
                (now + delivery.elapsed, self._pending_seq, delivery),
            )
            self._pending_seq += 1

    def next_delivery_at(self) -> Optional[float]:
        """Arrival time of the earliest buffered delivery, if any."""
        if not self._pending:
            return None
        return self._pending[0][0]

    def deliveries(
        self, until: float | None = None, node: Node | None = None
    ) -> list[tuple[float, Delivery]]:
        """Pop buffered deliveries that have arrived by ``until``.

        ``until`` defaults to the current clock; ``node`` filters to one
        recipient (others popped in the same call are discarded, like
        packets addressed to a socket nobody holds open).
        """
        horizon = self.clock.now if until is None else until
        due: list[tuple[float, Delivery]] = []
        while self._pending and self._pending[0][0] <= horizon:
            arrival, __, delivery = heapq.heappop(self._pending)
            if node is None or delivery.node is node:
                due.append((arrival, delivery))
        return due

    def _traverse(
        self,
        action: Transmit,
        elapsed: float,
        queue: deque,
        result: WalkResult,
    ) -> None:
        """Carry a Transmit across its link, applying delay and loss."""
        interface = action.interface
        link = interface.link
        if link is None:
            result.drops.append(
                DropRecord(interface.node, action.packet,
                           f"{interface.label} has no link", elapsed)
            )
            return
        if link.drops_packet():
            result.drops.append(
                DropRecord(interface.node, action.packet,
                           f"lost on link at {interface.label}", elapsed)
            )
            return
        peer = link.peer_of(interface)
        queue.append(
            (peer.node, peer, action.packet, elapsed + link.delay, False)
        )

    # ------------------------------------------------------------------
    # diagnostics
    # ------------------------------------------------------------------
    def describe(self) -> str:
        """A multi-line inventory, useful in examples and debugging."""
        lines = [f"Network {self.name!r}: {len(self.nodes)} nodes, "
                 f"{len(self.links)} links"]
        for name in sorted(self.nodes):
            node = self.nodes[name]
            ifaces = ", ".join(
                f"{i.label}={i.address}" for i in node.interfaces
            )
            lines.append(f"  {type(node).__name__} {name}: {ifaces}")
        return "\n".join(lines)


def dispatchable(node: Node) -> bool:
    """True if ``node`` can originate packets (has a dispatch method)."""
    return hasattr(node, "dispatch")


def ensure_iterable_interfaces(
    interfaces: Interface | Iterable[Interface],
) -> list[Interface]:
    """Normalize a single interface or an iterable into a list."""
    if isinstance(interfaces, Interface):
        return [interfaces]
    return list(interfaces)
