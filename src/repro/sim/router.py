"""Routers: TTL handling, ICMP generation, and load-balanced forwarding.

The behaviours the paper depends on are all here:

- TTL expiry produces a Time Exceeded quoting the probe *as received*,
  so the quoted "probe TTL" is 1 in normal operation and 0 downstream
  of a zero-TTL-forwarding router (Fig. 4);
- a router whose onward forwarding is broken answers TTL-1 probes
  normally but deeper probes with Destination Unreachable — the paper's
  "unreachability message" loops (Sec. 4.1.1);
- a route entry may list several equal-cost egress interfaces governed
  by a :class:`repro.sim.balancer.BalancerPolicy` — this is the load
  balancer ``L`` of Figs. 1, 3, and 6;
- dynamics can install timed overrides on the table (route changes and
  transient forwarding loops, Sec. 4.2.1).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Optional

from repro.errors import TopologyError
from repro.net.icmp import (
    ICMPDestinationUnreachable,
    ICMPTimeExceeded,
    UnreachableCode,
)
from repro.net.inet import IPv4Address, Prefix
from repro.net.packet import Packet
from repro.sim.balancer import BalancerPolicy
from repro.sim.node import Action, Drop, Interface, Node, Transmit

if TYPE_CHECKING:  # pragma: no cover - typing-only imports
    from repro.sim.network import Network


@dataclass
class RouteEntry:
    """One forwarding-table entry.

    ``egresses`` lists this router's own interfaces toward the next
    hops.  More than one egress makes this entry load-balanced and
    requires a ``balancer`` policy.

    An entry with ``unreachable=True`` is a null route: packets matching
    it draw a Destination Unreachable with ``unreachable_code``.  This
    models the paper's "router unable to forward probes" scenario — the
    TTL-1 probe is still answered normally (TTL handling precedes the
    lookup), so classic traceroute sees the same address twice, flagged
    ``!H``/``!N`` on the second appearance.
    """

    prefix: Prefix
    egresses: list[Interface]
    balancer: Optional[BalancerPolicy] = None
    unreachable: bool = False
    unreachable_code: UnreachableCode = UnreachableCode.HOST_UNREACHABLE

    def __post_init__(self) -> None:
        if self.unreachable:
            if self.egresses:
                raise TopologyError("an unreachable route cannot have egresses")
            return
        if not self.egresses:
            raise TopologyError(f"route {self.prefix} has no egress")
        if len(self.egresses) > 1 and self.balancer is None:
            raise TopologyError(
                f"route {self.prefix} has {len(self.egresses)} egresses "
                "but no balancer policy"
            )

    def choose_egress(self, packet: Packet) -> Interface:
        """Pick the egress interface for ``packet``."""
        if self.unreachable:
            raise TopologyError("unreachable route has no egress to choose")
        if len(self.egresses) == 1:
            return self.egresses[0]
        index = self.balancer.choose(packet, len(self.egresses))
        return self.egresses[index]


#: ``value & _MASKS[length]`` is the network part of ``value/length``.
_MASKS = tuple(((0xFFFFFFFF << (32 - length)) & 0xFFFFFFFF) if length
               else 0 for length in range(33))


class _FibNode:
    """One node of a router's binary FIB trie.

    ``entry`` is the table entry whose prefix ends exactly here (None on
    pass-through nodes); ``zero``/``one`` are the children by next bit.
    """

    __slots__ = ("zero", "one", "entry")

    def __init__(self) -> None:
        self.zero: Optional["_FibNode"] = None
        self.one: Optional["_FibNode"] = None
        self.entry: Optional[RouteEntry] = None


@dataclass
class TimedOverride:
    """A forwarding override active during ``[start, end)``.

    Used by the dynamics engine for route changes (``end`` = infinity)
    and transient forwarding loops (finite window).
    """

    prefix: Prefix
    entry: RouteEntry
    start: float
    end: float = float("inf")

    def active(self, now: float) -> bool:
        return self.start <= now < self.end


class Router(Node):
    """A forwarding node with a longest-prefix-match table."""

    def __init__(self, name: str, **node_kwargs) -> None:
        super().__init__(name, **node_kwargs)
        self._table: list[RouteEntry] = []
        self._overrides: list[TimedOverride] = []
        # Destination -> (entry, covering prefix) memo for
        # lookup_cached(); invalidated on any table or override change,
        # bypassed while overrides exist.
        self._lookup_cache: dict[
            IPv4Address, tuple[Optional[RouteEntry], Optional[Prefix]]] = {}
        # Lazily built binary trie over the static table, plus the
        # covering-prefix index it feeds: (length, network int) ->
        # memoised (entry, prefix) pair.  Covering prefixes are
        # *disjoint* by construction (see _fib_lookup), so at most one
        # length in _aggregate_lengths can match a destination.
        self._fib_root: Optional[_FibNode] = None
        self._aggregate: dict[
            tuple[int, int], tuple[Optional[RouteEntry], Prefix]] = {}
        self._aggregate_lengths: list[int] = []
        #: Full longest-prefix-match resolutions performed (linear table
        #: scans and FIB-trie walks alike; memo and covering-prefix hits
        #: are free and not counted).  The walk-batching benchmarks key
        #: off this counter.
        self.lookup_count = 0
        # Bound rate-limit counter children per (client, action), keyed
        # on the registry identity so a replaced registry rebinds — the
        # token bucket fires per probe, too hot for family lookups.
        # Rate-limit outcomes accumulate as plain (client, action) ->
        # count entries; a registry collector publishes them at
        # snapshot time (this path fires per expiring probe).
        self._rl_registry = None
        self._rl_acc: dict = {}
        self._rl_published: dict = {}

    def reset_counters(self) -> None:
        """Zero the LPM resolution counter (memos stay warm).

        Part of the explicit :meth:`repro.sim.network.Network.reset_counters`
        path benches use between legs instead of relying on fresh
        network construction.
        """
        self.lookup_count = 0

    def _invalidate_lookup_state(self) -> None:
        """Drop every memo derived from the table / override set."""
        self._lookup_cache.clear()
        self._fib_root = None
        self._aggregate.clear()
        self._aggregate_lengths.clear()

    # ------------------------------------------------------------------
    # table management
    # ------------------------------------------------------------------
    def add_route(
        self,
        prefix: Prefix | str,
        egresses: Interface | list[Interface],
        balancer: BalancerPolicy | None = None,
    ) -> RouteEntry:
        """Install a static route; keeps the table sorted by specificity."""
        if isinstance(egresses, Interface):
            egresses = [egresses]
        entry = RouteEntry(
            prefix=prefix if isinstance(prefix, Prefix) else Prefix(prefix),
            egresses=list(egresses),
            balancer=balancer,
        )
        for iface in entry.egresses:
            if iface.node is not self:
                raise TopologyError(
                    f"egress {iface.label} does not belong to router {self.name}"
                )
        self._table.append(entry)
        self._table.sort(key=lambda e: e.prefix.length, reverse=True)
        self._invalidate_lookup_state()
        return entry

    def add_default_route(
        self,
        egresses: Interface | list[Interface],
        balancer: BalancerPolicy | None = None,
    ) -> RouteEntry:
        """Install the 0.0.0.0/0 route (the "up toward provider" path)."""
        return self.add_route(Prefix("0.0.0.0/0"), egresses, balancer)

    def replace_route(
        self,
        prefix: Prefix | str,
        egresses: Interface | list[Interface],
        balancer: BalancerPolicy | None = None,
    ) -> RouteEntry:
        """Drop any entry for exactly ``prefix`` and install a new one."""
        target = prefix if isinstance(prefix, Prefix) else Prefix(prefix)
        self._table = [e for e in self._table if e.prefix != target]
        self._invalidate_lookup_state()
        return self.add_route(target, egresses, balancer)

    def add_unreachable_route(
        self,
        prefix: Prefix | str,
        code: UnreachableCode = UnreachableCode.HOST_UNREACHABLE,
    ) -> RouteEntry:
        """Install a null route: matching packets draw Dest Unreachable."""
        entry = RouteEntry(
            prefix=prefix if isinstance(prefix, Prefix) else Prefix(prefix),
            egresses=[],
            unreachable=True,
            unreachable_code=code,
        )
        self._table.append(entry)
        self._table.sort(key=lambda e: e.prefix.length, reverse=True)
        self._invalidate_lookup_state()
        return entry

    def add_override(self, override: TimedOverride) -> None:
        """Register a timed forwarding override (dynamics hook)."""
        self._overrides.append(override)
        self._invalidate_lookup_state()

    def clear_overrides(self) -> None:
        """Remove all dynamics overrides (used between campaign runs)."""
        self._overrides.clear()
        self._invalidate_lookup_state()

    @property
    def table(self) -> list[RouteEntry]:
        """The static table, most-specific first (read-only view)."""
        return list(self._table)

    def lookup_cached(
        self, dst: IPv4Address, now: float, aggregate: bool = True,
    ) -> tuple[Optional[RouteEntry], Optional[Prefix]]:
        """Memoised lookup returning ``(entry, covering prefix)``.

        The covering prefix is the forwarding-equivalence region around
        ``dst``: every destination inside it resolves to the same entry,
        so the cohort walker can group probes toward *different*
        destinations behind one resolution.  With ``aggregate`` on (the
        default), a new destination first consults the covering-prefix
        index — a hit costs one dict probe per distinct cached prefix
        length and performs no LPM at all — and only then walks the FIB
        trie, registering the region it discovers.  ``aggregate=False``
        reproduces the pre-aggregation behaviour (one linear-scan
        :meth:`lookup` per new destination, covering prefix ``None``) —
        the walk-batching benchmark's baseline.

        Memos are dropped whenever the table or the override set
        changes, and skipped entirely while overrides are installed
        (their activation depends on ``now``, not on table state).
        """
        if self._overrides:
            return self.lookup(dst, now), None
        pair = self._lookup_cache.get(dst)
        if pair is not None:
            return pair
        if aggregate:
            value = int(dst)
            for length in self._aggregate_lengths:
                pair = self._aggregate.get((length, value & _MASKS[length]))
                if pair is not None:
                    self._lookup_cache[dst] = pair
                    return pair
            pair = self._fib_lookup(dst)
            prefix = pair[1]
            self._aggregate[(prefix.length, int(prefix.network))] = pair
            if prefix.length not in self._aggregate_lengths:
                self._aggregate_lengths.append(prefix.length)
        else:
            pair = (self.lookup(dst, now), None)
        self._lookup_cache[dst] = pair
        return pair

    def _fib_lookup(
        self, dst: IPv4Address
    ) -> tuple[Optional[RouteEntry], Prefix]:
        """One FIB-trie walk: the LPM entry and its covering prefix.

        The walk follows ``dst``'s bits until the trie has no child for
        the next bit (depth ``d``); the deepest entry passed on the way
        is the longest-prefix match — identical to what the linear scan
        of :meth:`lookup` returns on an override-free router.  The
        covering prefix is ``dst/(d+1)``: any address sharing those
        bits walks the same trie path to the same dead end, so it
        resolves to the same entry.  Two covering prefixes discovered
        this way can never partially overlap (containment would force
        the contained walk to stop at the container's dead end), which
        is what lets the covering-prefix index probe each cached length
        independently.
        """
        self.lookup_count += 1
        root = self._fib_root
        if root is None:
            root = self._build_fib()
        value = int(dst)
        node = root
        best = root.entry
        depth = 0
        while depth < 32:
            child = node.one if (value >> (31 - depth)) & 1 else node.zero
            if child is None:
                break
            node = child
            depth += 1
            if node.entry is not None:
                best = node.entry
        length = depth + 1 if depth < 32 else 32
        prefix = Prefix((IPv4Address(value & _MASKS[length]), length))
        return best, prefix

    def _build_fib(self) -> _FibNode:
        """Materialise the binary trie over the static table.

        Entries are inserted in table order (most-specific first,
        insertion-stable within a length), and the first entry to claim
        a trie node keeps it — the same winner the linear scan picks
        when a prefix appears twice.
        """
        root = _FibNode()
        for entry in self._table:
            node = root
            value = int(entry.prefix.network)
            for depth in range(entry.prefix.length):
                if (value >> (31 - depth)) & 1:
                    child = node.one
                    if child is None:
                        child = node.one = _FibNode()
                else:
                    child = node.zero
                    if child is None:
                        child = node.zero = _FibNode()
                node = child
            if node.entry is None:
                node.entry = entry
        self._fib_root = root
        return root

    def lookup(self, dst: IPv4Address, now: float) -> Optional[RouteEntry]:
        """Longest-prefix-match lookup, with active overrides first.

        Among active overrides, a more recent ``start`` wins at equal
        prefix length, so a route change fully shadows what it replaced.
        Returns None when no entry matches.
        """
        self.lookup_count += 1
        candidates: list[tuple[int, float, RouteEntry]] = []
        for override in self._overrides:
            if override.active(now) and override.prefix.contains(dst):
                candidates.append(
                    (override.prefix.length, override.start, override.entry)
                )
        if candidates:
            candidates.sort(key=lambda c: (c[0], c[1]), reverse=True)
            return candidates[0][2]
        for entry in self._table:
            if entry.prefix.contains(dst):
                return entry
        return None

    # ------------------------------------------------------------------
    # packet processing
    # ------------------------------------------------------------------
    def receive(
        self,
        packet: Packet,
        in_interface: Interface | None,
        network: "Network",
    ) -> list[Action]:
        """Forward, answer, or discard an arriving packet."""
        if packet.dst in self.addresses:
            return self.local_deliver(packet, in_interface)

        is_icmp_error = isinstance(
            packet.transport, (ICMPTimeExceeded, ICMPDestinationUnreachable)
        )

        # --- TTL handling -------------------------------------------------
        if packet.ttl == 0:
            # Arrived already expired: only possible downstream of a
            # zero-TTL-forwarding router.  Answer with a Time Exceeded
            # quoting TTL 0 — the Fig. 4 signature.
            if is_icmp_error or self.faults.silent:
                return [Drop(self, packet, "ttl 0, no response")]
            return self._rate_limited_time_exceeded(packet, in_interface,
                                                    network)
        if packet.ttl == 1 and not self.faults.zero_ttl_forwarding:
            if is_icmp_error or self.faults.silent:
                return [Drop(self, packet, "ttl expired, no response")]
            return self._rate_limited_time_exceeded(packet, in_interface,
                                                    network)

        # --- route lookup -------------------------------------------------
        entry = self.lookup(packet.dst, network.clock.now)
        if entry is None or entry.unreachable:
            if is_icmp_error or self.faults.silent:
                return [Drop(self, packet, "no route, no response")]
            code = (
                entry.unreachable_code
                if entry is not None
                else self.faults.unreachable_code
            )
            response = self.make_unreachable(packet, in_interface, code)
            return self._emit_response(response, packet)

        # --- forward ------------------------------------------------------
        egress = entry.choose_egress(packet)
        forwarded = packet.decremented()
        return [Transmit(egress, forwarded)]

    def _rate_limited_time_exceeded(
        self,
        packet: Packet,
        in_interface: Interface | None,
        network: "Network",
    ) -> list[Action]:
        """Generate a Time Exceeded through the ICMP token bucket.

        The bucket is keyed by the probing client (the offending
        packet's source), so one vantage point's probe bursts never
        perturb the silence pattern another vantage observes.  An
        exhausted bucket either stars the hop (``"drop"``) or paces the
        response out at the next token accrual (``"defer"``).
        """
        delay = self.faults.response_delay_at(network.clock.now, packet.src)
        metrics = getattr(network, "metrics", None)
        if metrics is not None and metrics.enabled:
            action = ("drop" if delay is None
                      else "defer" if delay > 0.0 else "pass")
            if self._rl_registry is not metrics:
                self._rl_registry = metrics
                self._rl_acc = {}
                self._rl_published = {}
                metrics.add_collector(self._collect_rate_limit)
            acc = self._rl_acc
            key = (packet.src, action)
            acc[key] = acc.get(key, 0) + 1
        if delay is None:
            return [Drop(self, packet, "icmp rate limited")]
        response = self.make_time_exceeded(packet, in_interface)
        return self._emit_response(response, packet, delay=delay)

    def _collect_rate_limit(self) -> None:
        """Publish accumulated token-bucket outcome deltas on snapshot."""
        family = self._rl_registry.counter(
            "repro_fault_rate_limit_total",
            "ICMP token-bucket outcomes per router and client.",
            ("router", "client", "action"))
        published = self._rl_published
        for (src, action), total in self._rl_acc.items():
            delta = total - published.get((src, action), 0)
            if delta:
                family.labels(self.name, str(src), action).inc(delta)
                published[(src, action)] = total

    def dispatch(self, packet: Packet, network: "Network") -> list[Action]:
        """Route a locally-generated packet (no TTL decrement here)."""
        entry = self.lookup(packet.dst, network.clock.now)
        if entry is None or entry.unreachable:
            return [Drop(self, packet, "no route for locally generated packet")]
        egress = entry.choose_egress(packet)
        return [Transmit(egress, packet)]
