"""Routers: TTL handling, ICMP generation, and load-balanced forwarding.

The behaviours the paper depends on are all here:

- TTL expiry produces a Time Exceeded quoting the probe *as received*,
  so the quoted "probe TTL" is 1 in normal operation and 0 downstream
  of a zero-TTL-forwarding router (Fig. 4);
- a router whose onward forwarding is broken answers TTL-1 probes
  normally but deeper probes with Destination Unreachable — the paper's
  "unreachability message" loops (Sec. 4.1.1);
- a route entry may list several equal-cost egress interfaces governed
  by a :class:`repro.sim.balancer.BalancerPolicy` — this is the load
  balancer ``L`` of Figs. 1, 3, and 6;
- dynamics can install timed overrides on the table (route changes and
  transient forwarding loops, Sec. 4.2.1).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Optional

from repro.errors import TopologyError
from repro.net.icmp import (
    ICMPDestinationUnreachable,
    ICMPTimeExceeded,
    UnreachableCode,
)
from repro.net.inet import IPv4Address, Prefix
from repro.net.packet import Packet
from repro.sim.balancer import BalancerPolicy
from repro.sim.node import Action, Drop, Interface, Node, Transmit

if TYPE_CHECKING:  # pragma: no cover - typing-only imports
    from repro.sim.network import Network


@dataclass
class RouteEntry:
    """One forwarding-table entry.

    ``egresses`` lists this router's own interfaces toward the next
    hops.  More than one egress makes this entry load-balanced and
    requires a ``balancer`` policy.

    An entry with ``unreachable=True`` is a null route: packets matching
    it draw a Destination Unreachable with ``unreachable_code``.  This
    models the paper's "router unable to forward probes" scenario — the
    TTL-1 probe is still answered normally (TTL handling precedes the
    lookup), so classic traceroute sees the same address twice, flagged
    ``!H``/``!N`` on the second appearance.
    """

    prefix: Prefix
    egresses: list[Interface]
    balancer: Optional[BalancerPolicy] = None
    unreachable: bool = False
    unreachable_code: UnreachableCode = UnreachableCode.HOST_UNREACHABLE

    def __post_init__(self) -> None:
        if self.unreachable:
            if self.egresses:
                raise TopologyError("an unreachable route cannot have egresses")
            return
        if not self.egresses:
            raise TopologyError(f"route {self.prefix} has no egress")
        if len(self.egresses) > 1 and self.balancer is None:
            raise TopologyError(
                f"route {self.prefix} has {len(self.egresses)} egresses "
                "but no balancer policy"
            )

    def choose_egress(self, packet: Packet) -> Interface:
        """Pick the egress interface for ``packet``."""
        if self.unreachable:
            raise TopologyError("unreachable route has no egress to choose")
        if len(self.egresses) == 1:
            return self.egresses[0]
        index = self.balancer.choose(packet, len(self.egresses))
        return self.egresses[index]


@dataclass
class TimedOverride:
    """A forwarding override active during ``[start, end)``.

    Used by the dynamics engine for route changes (``end`` = infinity)
    and transient forwarding loops (finite window).
    """

    prefix: Prefix
    entry: RouteEntry
    start: float
    end: float = float("inf")

    def active(self, now: float) -> bool:
        return self.start <= now < self.end


class Router(Node):
    """A forwarding node with a longest-prefix-match table."""

    def __init__(self, name: str, **node_kwargs) -> None:
        super().__init__(name, **node_kwargs)
        self._table: list[RouteEntry] = []
        self._overrides: list[TimedOverride] = []
        # Destination -> entry memo for lookup_cached(); invalidated on
        # any table or override change, bypassed while overrides exist.
        self._lookup_cache: dict[IPv4Address, Optional[RouteEntry]] = {}

    # ------------------------------------------------------------------
    # table management
    # ------------------------------------------------------------------
    def add_route(
        self,
        prefix: Prefix | str,
        egresses: Interface | list[Interface],
        balancer: BalancerPolicy | None = None,
    ) -> RouteEntry:
        """Install a static route; keeps the table sorted by specificity."""
        if isinstance(egresses, Interface):
            egresses = [egresses]
        entry = RouteEntry(
            prefix=prefix if isinstance(prefix, Prefix) else Prefix(prefix),
            egresses=list(egresses),
            balancer=balancer,
        )
        for iface in entry.egresses:
            if iface.node is not self:
                raise TopologyError(
                    f"egress {iface.label} does not belong to router {self.name}"
                )
        self._table.append(entry)
        self._table.sort(key=lambda e: e.prefix.length, reverse=True)
        self._lookup_cache.clear()
        return entry

    def add_default_route(
        self,
        egresses: Interface | list[Interface],
        balancer: BalancerPolicy | None = None,
    ) -> RouteEntry:
        """Install the 0.0.0.0/0 route (the "up toward provider" path)."""
        return self.add_route(Prefix("0.0.0.0/0"), egresses, balancer)

    def replace_route(
        self,
        prefix: Prefix | str,
        egresses: Interface | list[Interface],
        balancer: BalancerPolicy | None = None,
    ) -> RouteEntry:
        """Drop any entry for exactly ``prefix`` and install a new one."""
        target = prefix if isinstance(prefix, Prefix) else Prefix(prefix)
        self._table = [e for e in self._table if e.prefix != target]
        self._lookup_cache.clear()
        return self.add_route(target, egresses, balancer)

    def add_unreachable_route(
        self,
        prefix: Prefix | str,
        code: UnreachableCode = UnreachableCode.HOST_UNREACHABLE,
    ) -> RouteEntry:
        """Install a null route: matching packets draw Dest Unreachable."""
        entry = RouteEntry(
            prefix=prefix if isinstance(prefix, Prefix) else Prefix(prefix),
            egresses=[],
            unreachable=True,
            unreachable_code=code,
        )
        self._table.append(entry)
        self._table.sort(key=lambda e: e.prefix.length, reverse=True)
        self._lookup_cache.clear()
        return entry

    def add_override(self, override: TimedOverride) -> None:
        """Register a timed forwarding override (dynamics hook)."""
        self._overrides.append(override)
        self._lookup_cache.clear()

    def clear_overrides(self) -> None:
        """Remove all dynamics overrides (used between campaign runs)."""
        self._overrides.clear()
        self._lookup_cache.clear()

    @property
    def table(self) -> list[RouteEntry]:
        """The static table, most-specific first (read-only view)."""
        return list(self._table)

    def lookup_cached(self, dst: IPv4Address, now: float) -> Optional[RouteEntry]:
        """Like :meth:`lookup`, memoised per destination.

        The memo is dropped whenever the table or the override set
        changes, and skipped entirely while overrides are installed
        (their activation depends on ``now``, not on table state).
        The cohort walker leans on this: one lookup per (router,
        destination) instead of one per probe per hop.
        """
        if self._overrides:
            return self.lookup(dst, now)
        try:
            return self._lookup_cache[dst]
        except KeyError:
            entry = self.lookup(dst, now)
            self._lookup_cache[dst] = entry
            return entry

    def lookup(self, dst: IPv4Address, now: float) -> Optional[RouteEntry]:
        """Longest-prefix-match lookup, with active overrides first.

        Among active overrides, a more recent ``start`` wins at equal
        prefix length, so a route change fully shadows what it replaced.
        Returns None when no entry matches.
        """
        candidates: list[tuple[int, float, RouteEntry]] = []
        for override in self._overrides:
            if override.active(now) and override.prefix.contains(dst):
                candidates.append(
                    (override.prefix.length, override.start, override.entry)
                )
        if candidates:
            candidates.sort(key=lambda c: (c[0], c[1]), reverse=True)
            return candidates[0][2]
        for entry in self._table:
            if entry.prefix.contains(dst):
                return entry
        return None

    # ------------------------------------------------------------------
    # packet processing
    # ------------------------------------------------------------------
    def receive(
        self,
        packet: Packet,
        in_interface: Interface | None,
        network: "Network",
    ) -> list[Action]:
        """Forward, answer, or discard an arriving packet."""
        if packet.dst in self.addresses:
            return self.local_deliver(packet, in_interface)

        is_icmp_error = isinstance(
            packet.transport, (ICMPTimeExceeded, ICMPDestinationUnreachable)
        )

        # --- TTL handling -------------------------------------------------
        if packet.ttl == 0:
            # Arrived already expired: only possible downstream of a
            # zero-TTL-forwarding router.  Answer with a Time Exceeded
            # quoting TTL 0 — the Fig. 4 signature.
            if is_icmp_error or self.faults.silent:
                return [Drop(self, packet, "ttl 0, no response")]
            return self._rate_limited_time_exceeded(packet, in_interface,
                                                    network)
        if packet.ttl == 1 and not self.faults.zero_ttl_forwarding:
            if is_icmp_error or self.faults.silent:
                return [Drop(self, packet, "ttl expired, no response")]
            return self._rate_limited_time_exceeded(packet, in_interface,
                                                    network)

        # --- route lookup -------------------------------------------------
        entry = self.lookup(packet.dst, network.clock.now)
        if entry is None or entry.unreachable:
            if is_icmp_error or self.faults.silent:
                return [Drop(self, packet, "no route, no response")]
            code = (
                entry.unreachable_code
                if entry is not None
                else self.faults.unreachable_code
            )
            response = self.make_unreachable(packet, in_interface, code)
            return self._emit_response(response, packet)

        # --- forward ------------------------------------------------------
        egress = entry.choose_egress(packet)
        forwarded = packet.decremented()
        return [Transmit(egress, forwarded)]

    def _rate_limited_time_exceeded(
        self,
        packet: Packet,
        in_interface: Interface | None,
        network: "Network",
    ) -> list[Action]:
        """Generate a Time Exceeded through the ICMP token bucket.

        The bucket is keyed by the probing client (the offending
        packet's source), so one vantage point's probe bursts never
        perturb the silence pattern another vantage observes.  An
        exhausted bucket either stars the hop (``"drop"``) or paces the
        response out at the next token accrual (``"defer"``).
        """
        delay = self.faults.response_delay_at(network.clock.now, packet.src)
        if delay is None:
            return [Drop(self, packet, "icmp rate limited")]
        response = self.make_time_exceeded(packet, in_interface)
        return self._emit_response(response, packet, delay=delay)

    def dispatch(self, packet: Packet, network: "Network") -> list[Action]:
        """Route a locally-generated packet (no TTL decrement here)."""
        entry = self.lookup(packet.dst, network.clock.now)
        if entry is None or entry.unreachable:
            return [Drop(self, packet, "no route for locally generated packet")]
        egress = entry.choose_egress(packet)
        return [Transmit(egress, packet)]
