"""Packet-level network simulator.

The simulator forwards real packet bytes (built by :mod:`repro.net`)
through routers that decrement TTL, generate quoting ICMP errors, keep
per-router IP-ID counters, and — critically for this paper — spread
traffic across equal-cost paths with per-flow, per-packet, or
per-destination load-balancing policies.

The tracers never touch simulator internals: their only view of the
network is :class:`repro.sim.socketapi.ProbeSocket`, which accepts probe
bytes and returns response bytes, exactly like a raw socket would.
"""

from repro.sim.clock import SimClock
from repro.sim.balancer import (
    BalancerPolicy,
    PerDestinationPolicy,
    PerFlowPolicy,
    PerPacketPolicy,
)
from repro.sim.faults import FaultProfile
from repro.sim.link import Link
from repro.sim.node import Interface, Node
from repro.sim.router import Router
from repro.sim.endhost import Host, MeasurementHost
from repro.sim.middlebox import NatBox
from repro.sim.network import Network
from repro.sim.dynamics import ForwardingLoopWindow, RouteChange
from repro.sim.socketapi import ProbeSocket, ProbeResponse

__all__ = [
    "SimClock",
    "BalancerPolicy",
    "PerFlowPolicy",
    "PerPacketPolicy",
    "PerDestinationPolicy",
    "FaultProfile",
    "Link",
    "Interface",
    "Node",
    "Router",
    "Host",
    "MeasurementHost",
    "NatBox",
    "Network",
    "RouteChange",
    "ForwardingLoopWindow",
    "ProbeSocket",
    "ProbeResponse",
]
