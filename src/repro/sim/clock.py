"""A simulated wall clock.

The paper's campaign bookkeeping (2-second response timeouts, ~27.3
seconds per destination, one-hour-eleven-minute rounds) and its routing
dynamics (mid-trace route changes, transient forwarding loops) are all
time-based.  :class:`SimClock` provides the single notion of "now" that
the socket API, the dynamics engine, and the campaign driver share.
"""

from __future__ import annotations

from repro.errors import ReproError


class SimClock:
    """Monotonically advancing simulated time, in seconds.

    Time only moves when a component calls :meth:`advance`; the
    simulator itself is untimed between advances.  This makes campaigns
    deterministic and lets a month of measurement run in milliseconds.
    """

    def __init__(self, start: float = 0.0) -> None:
        self._now = float(start)

    @property
    def now(self) -> float:
        """Current simulated time in seconds since the epoch of the run."""
        return self._now

    def advance(self, seconds: float) -> float:
        """Move time forward by ``seconds`` (must be non-negative)."""
        if seconds < 0:
            raise ReproError(f"cannot move time backwards by {seconds}")
        self._now += seconds
        return self._now

    def advance_to(self, timestamp: float) -> float:
        """Move time forward to an absolute ``timestamp``."""
        if timestamp < self._now:
            raise ReproError(
                f"cannot rewind clock from {self._now} to {timestamp}"
            )
        self._now = timestamp
        return self._now

    def seek(self, timestamp: float) -> float:
        """Jump to ``timestamp``, backwards allowed.

        Only the campaign scheduler uses this: it interleaves the
        timelines of its 32 virtual workers, so consecutive traces may
        start at out-of-order absolute times.  Dynamics stay correct
        because overrides activate on pure ``start <= now < end``
        window checks, never on the order in which times were visited.
        """
        self._now = float(timestamp)
        return self._now

    def __repr__(self) -> str:
        return f"SimClock(now={self._now:.6f})"
