"""Point-to-point links between interfaces.

Links carry delay (which accumulates into round-trip times) and an
optional loss rate (probes or responses vanishing in transit, which
traceroute renders as stars).
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for typing only
    from repro.sim.node import Interface


@dataclass
class Link:
    """An undirected link joining exactly two interfaces.

    ``delay`` is the one-way propagation delay in seconds; ``loss_rate``
    the independent per-packet drop probability.  A link can be taken
    administratively ``down`` by dynamics events.
    """

    a: "Interface"
    b: "Interface"
    delay: float = 0.001
    loss_rate: float = 0.0
    loss_seed: int = 0
    up: bool = True
    _loss_rng: random.Random = field(init=False, repr=False, default=None)

    def __post_init__(self) -> None:
        if not 0.0 <= self.loss_rate <= 1.0:
            raise ValueError(f"loss_rate must be in [0,1]: {self.loss_rate}")
        if self.delay < 0:
            raise ValueError(f"delay must be non-negative: {self.delay}")
        self._loss_rng = random.Random(self.loss_seed)

    def peer_of(self, interface: "Interface") -> "Interface":
        """The interface at the other end of the link."""
        if interface is self.a:
            return self.b
        if interface is self.b:
            return self.a
        raise ValueError(f"{interface!r} is not attached to this link")

    def drops_packet(self) -> bool:
        """Draw one loss decision for a traversal."""
        if not self.up:
            return True
        if self.loss_rate <= 0.0:
            return False
        return self._loss_rng.random() < self.loss_rate

    def __repr__(self) -> str:
        state = "up" if self.up else "down"
        return f"Link({self.a.label} <-> {self.b.label}, {state})"
