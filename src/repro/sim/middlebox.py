"""NAT boxes and source-rewriting firewalls (the paper's Fig. 5).

"Gateway routers, like NAT boxes and some firewalls, replace the Source
Address field of all ICMP packets that originate within the subnetwork
to which it is attached with a single IP address."  The result: every
router behind the gateway appears in traceroute output as the gateway's
own address, producing loops at the ends of measured routes.

Detection relies on what the rewrite does *not* change: the response
TTL keeps decreasing with distance (the inner routers really are
farther away) and the IP ID sequences of distinct inner routers remain
uncorrelated.  :class:`NatBox` preserves both properties because it
rewrites only the Source Address and leaves TTL/ID untouched.
"""

from __future__ import annotations

from dataclasses import replace as dataclass_replace
from typing import TYPE_CHECKING

from repro.errors import TopologyError
from repro.net.ipv4 import IPProtocol
from repro.net.packet import Packet
from repro.sim.node import Action, Interface, Transmit
from repro.sim.router import Router

if TYPE_CHECKING:  # pragma: no cover - typing-only imports
    from repro.sim.network import Network


class NatBox(Router):
    """A router that masquerades ICMP traffic leaving its inside network.

    Interface 0 (created first) is the *external* interface; every other
    interface faces inside.  ICMP packets forwarded from an inside
    interface out the external one get their Source Address replaced by
    the external interface's address.  TTL decrement, Time Exceeded
    generation, and everything else behave exactly as in a plain router
    — a NAT box at hop ``h`` answers the hop-``h`` probe itself.
    """

    EXTERNAL_INDEX = 0

    @property
    def external_interface(self) -> Interface:
        if not self.interfaces:
            raise TopologyError(f"NAT {self.name} has no interfaces yet")
        return self.interfaces[self.EXTERNAL_INDEX]

    def receive(
        self,
        packet: Packet,
        in_interface: Interface | None,
        network: "Network",
    ) -> list[Action]:
        actions = super().receive(packet, in_interface, network)
        arrived_inside = (
            in_interface is not None and in_interface is not self.external_interface
        )
        if not arrived_inside:
            return actions
        return [self._masquerade_if_outbound(a) for a in actions]

    def _masquerade_if_outbound(self, action: Action) -> Action:
        """Rewrite the source of ICMP packets leaving via the external side."""
        if not isinstance(action, Transmit):
            return action
        if action.interface is not self.external_interface:
            return action
        rewritten = self.rewrite_outbound(action.packet)
        if rewritten is action.packet:
            return action
        return Transmit(action.interface, rewritten)

    def rewrite_outbound(self, packet: Packet) -> Packet:
        """The masqueraded form of a packet leaving the external side.

        Returns ``packet`` itself (by identity) when no rewrite applies.
        Only *private* (RFC 1918) ICMP sources are rewritten: they have
        no valid identity outside.  A host behind the gateway holding a
        public (mapped/port-forwarded) address keeps its own source, so
        NAT'd destinations still answer pings with their probed address
        — which is how the paper's destination list could contain them.
        The cohort walker calls this directly for packets it carries in
        fast transit across the NAT, so the two walks masquerade byte-
        identically.
        """
        if int(packet.ip.protocol) != int(IPProtocol.ICMP):
            return packet
        if not packet.src.is_private:
            return packet
        external = self.external_interface.address
        if packet.src == external:
            return packet
        return Packet(
            ip=dataclass_replace(packet.ip, src=external),
            transport=packet.transport,
            payload=packet.payload,
        )
