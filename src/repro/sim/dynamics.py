"""Routing dynamics: timed route changes and transient forwarding loops.

The paper attributes part of the observed loops to "a routing change
that forced packets from the path through A to the one through B in the
middle of a traceroute", and 20% of cycles to true forwarding loops
"which may happen during routing convergence".  Both are modelled as
events that install :class:`repro.sim.router.TimedOverride` entries on
routers when their time comes.

Events are registered with :meth:`repro.sim.network.Network.add_dynamics`
and applied lazily at each packet injection, so nothing happens "between"
probes except what the clock says.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING

from repro.errors import TopologyError
from repro.net.inet import Prefix
from repro.sim.balancer import BalancerPolicy
from repro.sim.node import Interface
from repro.sim.router import RouteEntry, Router, TimedOverride

if TYPE_CHECKING:  # pragma: no cover - typing-only imports
    from repro.sim.network import Network


@dataclass
class RouteChange:
    """From ``at_time`` on, ``router`` sends ``prefix`` via ``egresses``.

    Models a routing-protocol convergence step.  A traceroute that
    straddles ``at_time`` sees the old path for its early probes and the
    new path for the late ones — one of the paper's loop/cycle causes
    that Paris traceroute can *not* remove (it is not a header artifact).
    """

    router: Router
    prefix: Prefix | str
    egresses: list[Interface]
    at_time: float
    balancer: BalancerPolicy | None = None
    #: None makes the change permanent; a number reverts it after that
    #: many seconds (a transient convergence episode).
    duration: float | None = None
    _installed: bool = field(default=False, init=False, repr=False)

    def __post_init__(self) -> None:
        if isinstance(self.prefix, str):
            self.prefix = Prefix(self.prefix)

    def apply(self, network: "Network", now: float) -> None:
        """Install the override once its time has come (idempotent)."""
        if self._installed or now < self.at_time:
            return
        entry = RouteEntry(
            prefix=self.prefix,
            egresses=list(self.egresses),
            balancer=self.balancer,
        )
        end = (float("inf") if self.duration is None
               else self.at_time + self.duration)
        self.router.add_override(
            TimedOverride(prefix=self.prefix, entry=entry,
                          start=self.at_time, end=end)
        )
        self._installed = True


@dataclass
class RouteWithdrawal:
    """From ``at_time`` on, ``router`` has a null route for ``prefix``.

    Models the "router unable to forward probes" condition appearing
    mid-campaign: subsequent traces through this router terminate in an
    unreachability-message loop (same address twice, ``!H``/``!N``).
    """

    router: Router
    prefix: Prefix | str
    at_time: float
    end: float = float("inf")
    _installed: bool = field(default=False, init=False, repr=False)

    def __post_init__(self) -> None:
        if isinstance(self.prefix, str):
            self.prefix = Prefix(self.prefix)

    def apply(self, network: "Network", now: float) -> None:
        if self._installed or now < self.at_time:
            return
        entry = RouteEntry(
            prefix=self.prefix, egresses=[], unreachable=True,
        )
        self.router.add_override(
            TimedOverride(prefix=self.prefix, entry=entry,
                          start=self.at_time, end=self.end)
        )
        self._installed = True


@dataclass
class ForwardingLoopWindow:
    """During ``[start, end)`` packets for ``prefix`` chase a ring.

    ``ring`` lists, per router, the egress interface pointing at the
    *next* router of the ring.  While the window is open each listed
    router forwards matching packets around the ring, so they revisit
    the same addresses until their TTL dies — producing the periodic
    address sequence the cycle classifier looks for (Sec. 4.2.1).
    """

    ring: list[tuple[Router, Interface]]
    prefix: Prefix | str
    start: float
    end: float
    _installed: bool = field(default=False, init=False, repr=False)

    def __post_init__(self) -> None:
        if isinstance(self.prefix, str):
            self.prefix = Prefix(self.prefix)
        if len(self.ring) < 2:
            raise TopologyError("a forwarding loop needs at least two routers")
        if not self.start < self.end:
            raise TopologyError("forwarding loop window must have start < end")

    def apply(self, network: "Network", now: float) -> None:
        """Install the ring overrides once ``start`` is reached (idempotent).

        The overrides carry the window's ``end``, so the loop heals
        automatically when time passes it.
        """
        if self._installed or now < self.start:
            return
        for router, egress in self.ring:
            if egress.node is not router:
                raise TopologyError(
                    f"ring egress {egress.label} is not an interface "
                    f"of {router.name}"
                )
            entry = RouteEntry(prefix=self.prefix, egresses=[egress])
            router.add_override(
                TimedOverride(
                    prefix=self.prefix, entry=entry,
                    start=self.start, end=self.end,
                )
            )
        self._installed = True
