"""Nodes and interfaces: the common machinery under routers and hosts.

A :class:`Node` owns named, addressed :class:`Interface` objects (the
paper labels them ``L0``, ``A0``, ``A1``, ...), an IP-ID counter (the
16-bit Identification counter Paris traceroute reads from responses),
and the factory that builds quoting ICMP responses per RFC 792.

``receive`` returns a list of :class:`Action` objects; the
:class:`repro.sim.network.Network` walk interprets them.  Keeping nodes
pure — in, packet; out, actions — makes every behaviour unit-testable
without a wired network.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Optional

from repro.errors import TopologyError
from repro.net.icmp import (
    ICMPDestinationUnreachable,
    ICMPEchoReply,
    ICMPEchoRequest,
    ICMPTimeExceeded,
    UnreachableCode,
)
from repro.net.inet import MAX_U16, IPv4Address
from repro.net.ipv4 import DEFAULT_ROUTER_TTL
from repro.net.packet import Packet
from repro.net.udp import UDPHeader
from repro.sim.faults import FaultProfile

if TYPE_CHECKING:  # pragma: no cover - typing-only imports
    from repro.sim.link import Link
    from repro.sim.network import Network


class Interface:
    """A named, addressed attachment point of a node.

    ``label`` follows the paper's convention: node name + index, e.g.
    the load balancer's interface 0 is ``L0``.
    """

    def __init__(self, node: "Node", index: int, address: IPv4Address) -> None:
        self.node = node
        self.index = index
        self.address = IPv4Address(address)
        self.link: Optional["Link"] = None

    @property
    def label(self) -> str:
        """Paper-style label, e.g. ``A0``."""
        return f"{self.node.name}{self.index}"

    @property
    def connected(self) -> bool:
        """True once a link is attached."""
        return self.link is not None

    def __repr__(self) -> str:
        return f"Interface({self.label}={self.address})"


@dataclass
class Transmit:
    """Action: send ``packet`` out of ``interface`` onto its link."""

    interface: Interface
    packet: Packet


@dataclass
class Deliver:
    """Action: ``packet`` terminated at this node (reached a socket)."""

    node: "Node"
    packet: Packet


@dataclass
class Drop:
    """Action: ``packet`` was discarded; ``reason`` aids diagnostics."""

    node: "Node"
    packet: Packet
    reason: str


@dataclass
class Respond:
    """Action: ``node`` generated ``packet``; route it from that node.

    Distinct from :class:`Transmit` because the generating node may not
    know (or care) which interface leads back to the probe source — the
    network walk re-enters the node's own forwarding logic to route it.
    ``delay`` is extra time spent *before* generation (a deferring ICMP
    rate limiter pacing its responses); the walk adds it to the elapsed
    time like a link crossing.
    """

    node: "Node"
    packet: Packet
    delay: float = 0.0


Action = Transmit | Deliver | Drop | Respond


class Node:
    """Base class for routers, hosts, and middleboxes.

    Subclasses implement :meth:`receive`.  The base provides interface
    management, the per-node IP-ID counter, and ICMP response
    construction honouring the node's :class:`FaultProfile`.
    """

    def __init__(
        self,
        name: str,
        faults: FaultProfile | None = None,
        icmp_initial_ttl: int = DEFAULT_ROUTER_TTL,
        ip_id_start: int = 0,
        respond_from: str = "ingress",
    ) -> None:
        if respond_from not in ("ingress", "first"):
            raise TopologyError(
                f"respond_from must be 'ingress' or 'first': {respond_from!r}"
            )
        self.name = name
        self.interfaces: list[Interface] = []
        self._addresses: frozenset[IPv4Address] = frozenset()
        self.faults = faults or FaultProfile()
        self.icmp_initial_ttl = icmp_initial_ttl
        self.respond_from = respond_from
        self._ip_id_start = ip_id_start & MAX_U16
        self._ip_id_streams: dict = {}

    # ------------------------------------------------------------------
    # interfaces
    # ------------------------------------------------------------------
    def add_interface(self, address: IPv4Address | str) -> Interface:
        """Create and attach a new interface with ``address``."""
        interface = Interface(self, len(self.interfaces), IPv4Address(address))
        self.interfaces.append(interface)
        self._addresses = self._addresses | {interface.address}
        return interface

    def interface(self, index: int) -> Interface:
        """The interface at ``index`` (paper-style: node.interface(0) is X0)."""
        try:
            return self.interfaces[index]
        except IndexError:
            raise TopologyError(f"{self.name} has no interface {index}") from None

    @property
    def addresses(self) -> frozenset[IPv4Address]:
        """All addresses owned by this node (immutable view).

        Maintained incrementally by :meth:`add_interface` rather than
        rebuilt per access: ``packet.dst in node.addresses`` is on the
        local-delivery check of every single packet receive, and
        constructing a fresh set there dominated the slow walk's
        profile.  A frozenset, so no caller can desynchronise it from
        the interface list.
        """
        return self._addresses

    def owns(self, address: IPv4Address) -> bool:
        """True if ``address`` belongs to one of this node's interfaces."""
        return address in self.addresses

    # ------------------------------------------------------------------
    # IP ID counter
    # ------------------------------------------------------------------
    def next_ip_id(self, recipient: IPv4Address | None = None) -> int:
        """Return and advance the 16-bit Identification counter.

        The paper: "This field is set by the router with the value of an
        internal 16-bit counter that is usually incremented for each
        packet sent."  Reading consecutive IP IDs from responses lets
        Paris traceroute tie multiple addresses to one box.

        The counter is kept per ``recipient`` (the prober the response
        is addressed to).  Any single observer therefore still reads
        one shared counter advancing across *all* of this node's
        interfaces — exactly what Rocketfuel's Ally exploits — but one
        vantage point's probing never perturbs the stream another
        vantage sees.  That is the simulator's determinism concession
        to multi-vantage fleets: with a truly global counter,
        cross-vantage interleaving would make sharded campaign replays
        diverge from single-process ones in this one forensic field
        (real-world Ally absorbs such unrelated traffic with its gap
        tolerance anyway).
        """
        value = self._ip_id_streams.get(recipient, self._ip_id_start)
        self._ip_id_streams[recipient] = (value + 1) & MAX_U16
        return value

    def peek_ip_id(self, recipient: IPv4Address | None = None) -> int:
        """The value the next generated packet will carry (for tests)."""
        return self._ip_id_streams.get(recipient, self._ip_id_start)

    # ------------------------------------------------------------------
    # ICMP generation
    # ------------------------------------------------------------------
    def response_source(self, in_interface: Interface | None) -> IPv4Address:
        """The Source Address for responses to a probe from ``in_interface``.

        Real routers usually answer from the interface the packet
        arrived on (``respond_from="ingress"``) — this is why the paper
        can speak of discovering "interface A0" at a hop.  Some answer
        from a fixed address instead (``respond_from="first"``), the
        assumption the paper makes for routers E and G in its Figs. 3
        and 6.  A ``fake_source_address`` fault overrides both.
        """
        if self.faults.fake_source_address is not None:
            return self.faults.fake_source_address
        if not self.interfaces:
            raise TopologyError(f"{self.name} has no interfaces to answer from")
        if self.respond_from == "first" or in_interface is None:
            return self.interfaces[0].address
        return in_interface.address

    def make_time_exceeded(
        self, offending: Packet, in_interface: Interface | None
    ) -> Packet:
        """Build the Time Exceeded response for a TTL-expired packet.

        The response quotes the offending packet's IP header exactly as
        received (so its TTL — the paper's "probe TTL" — is preserved)
        plus the first eight octets of its transport payload.
        """
        message = ICMPTimeExceeded(
            quoted_header=offending.ip,
            quoted_payload=offending.first_eight_transport_octets(),
        )
        return Packet.make(
            src=self.response_source(in_interface),
            dst=offending.src,
            transport=message,
            ttl=self.icmp_initial_ttl,
            identification=self.next_ip_id(offending.src),
        )

    def make_unreachable(
        self,
        offending: Packet,
        in_interface: Interface | None,
        code: UnreachableCode,
    ) -> Packet:
        """Build a Destination Unreachable response with ``code``."""
        message = ICMPDestinationUnreachable(
            quoted_header=offending.ip,
            quoted_payload=offending.first_eight_transport_octets(),
            code=int(code),
        )
        return Packet.make(
            src=self.response_source(in_interface),
            dst=offending.src,
            transport=message,
            ttl=self.icmp_initial_ttl,
            identification=self.next_ip_id(offending.src),
        )

    def make_echo_reply(
        self, request: Packet, in_interface: Interface | None
    ) -> Packet:
        """Build the Echo Reply for an Echo Request addressed to us."""
        echo = request.transport
        if not isinstance(echo, ICMPEchoRequest):
            raise TopologyError("make_echo_reply needs an Echo Request packet")
        reply = ICMPEchoReply(
            identifier=echo.identifier,
            sequence=echo.sequence,
            payload=echo.payload,
        )
        # An Echo Reply answers to the *probed* address, not necessarily
        # the ingress interface; use the destination the prober targeted.
        source = (
            self.faults.fake_source_address
            if self.faults.fake_source_address is not None
            else request.dst
        )
        return Packet.make(
            src=source,
            dst=request.src,
            transport=reply,
            ttl=self.icmp_initial_ttl,
            identification=self.next_ip_id(request.src),
        )

    # ------------------------------------------------------------------
    # local delivery (shared by routers and hosts)
    # ------------------------------------------------------------------
    def local_deliver(
        self, packet: Packet, in_interface: Interface | None
    ) -> list[Action]:
        """Handle a packet addressed to this node.

        Default behaviour — shared by routers and destination hosts:

        - ICMP Echo Request → Echo Reply (nodes are pingable);
        - UDP to an unlistened port → Port Unreachable (ends a UDP
          traceroute);
        - ICMP errors → consumed silently (never answer an error with an
          error, RFC 792);
        - anything else → consumed.

        ``silent`` faults and response loss suppress answers.
        """
        if self.faults.silent:
            return [Drop(self, packet, "silent node")]
        transport = packet.transport
        if isinstance(transport, ICMPEchoRequest):
            response = self.make_echo_reply(packet, in_interface)
            return self._emit_response(response, packet)
        if isinstance(transport, UDPHeader):
            response = self.make_unreachable(
                packet, in_interface, UnreachableCode.PORT_UNREACHABLE
            )
            return self._emit_response(response, packet)
        return [Deliver(self, packet)]

    def _emit_response(self, response: Packet, offending: Packet,
                       delay: float = 0.0) -> list[Action]:
        """Wrap a generated response in actions, honouring loss faults.

        The probing client (the offending packet's source) keys the
        correlated-loss channel, so each vantage point rides its own
        deterministic burst calendar; ``delay`` carries a deferring
        rate limiter's pacing into the walk.
        """
        if self.faults.response_is_lost(offending.src):
            return [Drop(self, offending, "response lost (fault profile)")]
        return [Respond(self, response, delay=delay)]

    # ------------------------------------------------------------------
    # to be provided by subclasses
    # ------------------------------------------------------------------
    def receive(
        self,
        packet: Packet,
        in_interface: Interface | None,
        network: "Network",
    ) -> list[Action]:
        """Process an arriving packet; return follow-up actions."""
        raise NotImplementedError

    def __repr__(self) -> str:
        return f"{type(self).__name__}({self.name!r})"
