"""Load-balancing policies: per-flow, per-packet, per-destination.

The paper (Sec. 2.1) distinguishes three ways a router spreads traffic
over equal-cost next hops:

- **per-flow** — a hash of header fields picks the next hop, so packets
  of one flow stick together.  The authors found the hashed fields to be
  the addresses, protocol, the *first four octets of the transport
  header*, and sometimes the TOS; that extractor
  (:func:`repro.net.flow.first_transport_word_flow`) is the default.
- **per-packet** — each packet independently goes to any next hop
  (round-robin or random), maximising evenness and destroying ordering.
- **per-destination** — the destination address alone picks the next
  hop; measurement-wise this is indistinguishable from classic routing,
  which is the reason the paper sets it aside.
"""

from __future__ import annotations

import hashlib
import random
from abc import ABC, abstractmethod

from repro.net.flow import FlowExtractor, FlowId, first_transport_word_flow
from repro.net.packet import Packet


class BalancerPolicy(ABC):
    """Chooses one of ``n`` equal-cost next hops for a packet."""

    #: Human-readable policy kind, used in reports and classification.
    kind: str = "abstract"

    @abstractmethod
    def choose(self, packet: Packet, n: int) -> int:
        """Return the next-hop index in ``range(n)`` for ``packet``."""

    def describe(self) -> str:
        """Short description used in diagnostics."""
        return self.kind


class PerFlowPolicy(BalancerPolicy):
    """Hash-based balancing: one flow, one path.

    ``salt`` models the per-router hash seed: distinct routers with the
    same policy may still split the same flow set differently.
    """

    kind = "per-flow"

    def __init__(
        self,
        salt: bytes = b"",
        extractor: FlowExtractor = first_transport_word_flow,
    ) -> None:
        self._salt = salt
        #: The flow extractor, public so the cohort walker can share
        #: one extraction across every policy using the same extractor
        #: (distinct per-flow balancers on a path almost always hash
        #: the same fields — only their salts differ).
        self.extractor = extractor

    def choose(self, packet: Packet, n: int) -> int:
        if n <= 1:
            return 0
        return self.choose_flow(self.flow_of(packet), n)

    def choose_flow(self, flow: FlowId, n: int) -> int:
        """Pick the next hop for an already-extracted flow identifier.

        The cohort walker extracts each probe's flow once and reuses it
        at every balancer on the path; this entry point keeps that
        decision byte-identical to :meth:`choose`.
        """
        if n <= 1:
            return 0
        return flow.bucket(n, salt=self._salt)

    def flow_of(self, packet: Packet) -> FlowId:
        """The flow identifier this balancer derives from ``packet``."""
        return self.extractor(packet)


class PerPacketPolicy(BalancerPolicy):
    """Stateless random or stateful round-robin balancing.

    ``mode`` is ``"random"`` (the paper's modelling assumption for its
    probability computations — "purely random load balancing") or
    ``"round-robin"`` (what e.g. Cisco CEF per-packet does).  Both are
    deterministic under a fixed seed.
    """

    kind = "per-packet"

    def __init__(self, seed: int = 0, mode: str = "random") -> None:
        if mode not in ("random", "round-robin"):
            raise ValueError(f"unknown per-packet mode: {mode!r}")
        self._mode = mode
        self._rng = random.Random(seed)
        self._counter = 0

    def choose(self, packet: Packet, n: int) -> int:
        if n <= 1:
            return 0
        if self._mode == "round-robin":
            index = self._counter % n
            self._counter += 1
            return index
        return self._rng.randrange(n)

    def describe(self) -> str:
        return f"{self.kind} ({self._mode})"


class PerDestinationPolicy(BalancerPolicy):
    """Destination-hash balancing: measurement-equivalent to plain routing."""

    kind = "per-destination"

    def __init__(self, salt: bytes = b"") -> None:
        self._salt = salt

    def choose(self, packet: Packet, n: int) -> int:
        if n <= 1:
            return 0
        digest = hashlib.sha256(self._salt + packet.dst.packed).digest()
        return int.from_bytes(digest[:8], "big") % n
