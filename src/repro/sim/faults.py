"""Router misbehaviour profiles.

Each non-load-balancing anomaly cause in the paper traces back to a
concrete router behaviour.  :class:`FaultProfile` bundles them so a
topology can mark any router with the quirks it should exhibit:

- ``silent`` — never answers probes (appears as ``*`` in traceroute;
  routers B and C in the paper's Fig. 1 behave this way).
- ``zero_ttl_forwarding`` — the Fig. 4 bug: forwards packets whose TTL
  reached zero instead of dropping them, so the *next* router answers
  with a quoted probe TTL of 0.
- ``fake_source_address`` — responds from an address that is not one of
  its interfaces (bogus/private), one of the suspected causes of
  residual cycles.
- ``response_loss_rate`` — fraction of generated responses that are
  lost, modelling rate limiting and transit loss (mid-route stars).
- ``icmp_rate_limit`` / ``icmp_burst`` / ``icmp_exhausted`` — a token
  bucket on ICMP generation: ``icmp_burst`` responses can go out back
  to back, then the bucket refills at ``icmp_rate_limit`` per second.
  An exhausted bucket either drops the response (``"drop"``, the
  Cisco/Linux behaviour — bursty silence) or defers its generation to
  the next token accrual (``"defer"`` — paced generation, the response
  arrives late but arrives).
- ``loss_burst_start`` / ``loss_burst_length`` — correlated response
  loss (a two-state Gilbert-Elliott channel): each answered probe may
  open a loss burst that then swallows a geometric run of subsequent
  responses, the signature of congested return paths.

The paper's "unreachability message" loops (a router that answers the
TTL-1 probe normally but deeper probes with Destination Unreachable,
Sec. 4.1.1) are *not* a fault flag: they are the normal behaviour of a
router holding a null route, modelled by
:meth:`repro.sim.router.Router.add_unreachable_route` or by dynamics
removing a route mid-campaign.  ``unreachable_code`` below only selects
the code used when a router has no matching table entry at all.

Determinism: the token bucket and the burst-loss channel keep their
state *per probing client* (the source address soliciting the
response), exactly like :meth:`repro.sim.node.Node.next_ip_id` keeps
IP-ID streams per recipient.  One vantage point's probing therefore
never perturbs the fault timeline another vantage observes, which is
what keeps sharded fleet campaigns byte-identical to single-process
ones even with these faults enabled (see :mod:`repro.vantage.sharding`).
The plain ``response_loss_rate`` draw keeps its original single shared
stream for backward compatibility with existing seeded topologies.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field

from repro.net.icmp import UnreachableCode
from repro.net.inet import IPv4Address

#: Token-bucket exhaustion behaviours.
ICMP_EXHAUSTED_MODES = ("drop", "defer")


@dataclass
class FaultProfile:
    """Behavioural quirks of one simulated router.

    The default profile is a fully well-behaved router.  Profiles are
    mutable configuration, not state: the random stream for response
    loss lives here so that each router misbehaves independently but
    reproducibly under a seed.
    """

    silent: bool = False
    zero_ttl_forwarding: bool = False
    unreachable_code: UnreachableCode = UnreachableCode.HOST_UNREACHABLE
    fake_source_address: IPv4Address | None = None
    response_loss_rate: float = 0.0
    loss_seed: int = 0
    #: ICMP token-bucket refill rate, responses per second.  0 disables
    #: the limit.  Real routers rate-limit ICMP generation, which is a
    #: major source of mid-route stars when several traceroutes transit
    #: one box closely in time.
    icmp_rate_limit: float = 0.0
    #: Token-bucket capacity: how many responses a cold router answers
    #: back to back before the limiter bites.  The default of 1
    #: reproduces the strict one-per-interval limiter.
    icmp_burst: int = 1
    #: What an exhausted bucket does: ``"drop"`` the response (silence,
    #: the common real-world behaviour) or ``"defer"`` its generation
    #: until the next token accrues (paced generation — the response
    #: arrives late, stretching the observed RTT).
    icmp_exhausted: str = "drop"
    #: Probability that an emitted response *opens* a correlated loss
    #: burst (evaluated per response while the channel is in its good
    #: state).  0 disables burst loss.
    loss_burst_start: float = 0.0
    #: Mean number of consecutive responses swallowed by one burst
    #: (geometric; the channel exits the bad state with probability
    #: ``1 / loss_burst_length`` per response).
    loss_burst_length: float = 4.0
    #: Extra seed mixed into the per-client burst-loss streams (the
    #: fault installer derives it from the profile seed and router
    #: name so no two routers share a burst calendar).
    burst_seed: int = 0
    _loss_rng: random.Random = field(init=False, repr=False, default=None)
    #: Per-client token bucket: client -> (tokens, last refill time).
    _buckets: dict = field(init=False, repr=False, default_factory=dict)
    #: Per-client burst-loss channel state: client -> in-burst flag.
    _burst_state: dict = field(init=False, repr=False, default_factory=dict)
    #: Per-client burst-loss RNG streams.
    _burst_rngs: dict = field(init=False, repr=False, default_factory=dict)

    def __post_init__(self) -> None:
        if not 0.0 <= self.response_loss_rate <= 1.0:
            raise ValueError(
                f"response_loss_rate must be in [0,1]: {self.response_loss_rate}"
            )
        if self.icmp_rate_limit < 0.0:
            raise ValueError(
                f"icmp_rate_limit must be >= 0: {self.icmp_rate_limit}"
            )
        if self.icmp_burst < 1:
            raise ValueError(f"icmp_burst must be >= 1: {self.icmp_burst}")
        if self.icmp_exhausted not in ICMP_EXHAUSTED_MODES:
            raise ValueError(
                f"icmp_exhausted must be one of {ICMP_EXHAUSTED_MODES}: "
                f"{self.icmp_exhausted!r}"
            )
        if not 0.0 <= self.loss_burst_start <= 1.0:
            raise ValueError(
                f"loss_burst_start must be in [0,1]: {self.loss_burst_start}"
            )
        if self.loss_burst_length < 1.0:
            raise ValueError(
                f"loss_burst_length must be >= 1: {self.loss_burst_length}"
            )
        self._loss_rng = random.Random(self.loss_seed)

    # ------------------------------------------------------------------
    # response loss (independent + correlated)
    # ------------------------------------------------------------------
    def response_is_lost(self, client: IPv4Address | None = None) -> bool:
        """Draw one loss decision for a generated response.

        The independent ``response_loss_rate`` draw comes first, from
        the profile's single shared stream (unchanged draw order for
        existing seeded topologies).  The correlated burst channel then
        gets its say, from a per-``client`` stream so each probing
        client rides its own burst calendar.
        """
        if self.response_loss_rate > 0.0:
            if self._loss_rng.random() < self.response_loss_rate:
                return True
        if self.loss_burst_start <= 0.0:
            return False
        rng = self._burst_rngs.get(client)
        if rng is None:
            rng = random.Random(f"{self.loss_seed}:{self.burst_seed}"
                                f":burst:{client}")
            self._burst_rngs[client] = rng
        if self._burst_state.get(client, False):
            # In a burst: this response is lost; geometric exit draw.
            if rng.random() < 1.0 / self.loss_burst_length:
                self._burst_state[client] = False
            return True
        if rng.random() < self.loss_burst_start:
            self._burst_state[client] = True
            return True
        return False

    # ------------------------------------------------------------------
    # ICMP rate limiting (token bucket)
    # ------------------------------------------------------------------
    def response_delay_at(self, now: float,
                          client: IPv4Address | None = None) -> float | None:
        """Token-bucket gate: may the router answer ``client`` at ``now``?

        Returns 0.0 when a token is available (answer immediately), a
        positive delay when the bucket is exhausted and the profile
        defers generation (the response leaves once the next token has
        accrued), or None when the exhausted bucket drops the response
        outright — a star.

        The campaign driver interleaves worker timelines by seeking the
        clock, so ``now`` may move backwards between calls; elapsed
        time is clamped at zero to keep the bucket deterministic under
        any visiting order.
        """
        if self.icmp_rate_limit <= 0.0:
            return 0.0
        tokens, last = self._buckets.get(client, (float(self.icmp_burst), now))
        elapsed = max(0.0, now - last)
        tokens = min(float(self.icmp_burst),
                     tokens + elapsed * self.icmp_rate_limit)
        refreshed = max(last, now)
        if tokens >= 1.0:
            self._buckets[client] = (tokens - 1.0, refreshed)
            return 0.0
        if self.icmp_exhausted == "drop":
            self._buckets[client] = (tokens, refreshed)
            return None
        # Defer: the response is generated the instant the bucket
        # accrues one full token, which that generation then spends.
        # ``refreshed`` may already sit in the future (earlier deferred
        # grants), so the delay is measured back to the caller's now.
        ready_at = refreshed + (1.0 - tokens) / self.icmp_rate_limit
        self._buckets[client] = (0.0, ready_at)
        return ready_at - now

    def allow_response_at(self, now: float,
                          client: IPv4Address | None = None) -> bool:
        """Boolean view of :meth:`response_delay_at` (legacy callers).

        Consumes a token when it grants one; a deferred grant counts as
        allowed.
        """
        return self.response_delay_at(now, client) is not None

    @property
    def well_behaved(self) -> bool:
        """True when no quirk is enabled."""
        return not (
            self.silent
            or self.zero_ttl_forwarding
            or self.fake_source_address is not None
            or self.response_loss_rate > 0.0
            or self.icmp_rate_limit > 0.0
            or self.loss_burst_start > 0.0
        )
