"""Router misbehaviour profiles.

Each non-load-balancing anomaly cause in the paper traces back to a
concrete router behaviour.  :class:`FaultProfile` bundles them so a
topology can mark any router with the quirks it should exhibit:

- ``silent`` — never answers probes (appears as ``*`` in traceroute;
  routers B and C in the paper's Fig. 1 behave this way).
- ``zero_ttl_forwarding`` — the Fig. 4 bug: forwards packets whose TTL
  reached zero instead of dropping them, so the *next* router answers
  with a quoted probe TTL of 0.
- ``fake_source_address`` — responds from an address that is not one of
  its interfaces (bogus/private), one of the suspected causes of
  residual cycles.
- ``response_loss_rate`` — fraction of generated responses that are
  lost, modelling rate limiting and transit loss (mid-route stars).

The paper's "unreachability message" loops (a router that answers the
TTL-1 probe normally but deeper probes with Destination Unreachable,
Sec. 4.1.1) are *not* a fault flag: they are the normal behaviour of a
router holding a null route, modelled by
:meth:`repro.sim.router.Router.add_unreachable_route` or by dynamics
removing a route mid-campaign.  ``unreachable_code`` below only selects
the code used when a router has no matching table entry at all.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field

from repro.net.icmp import UnreachableCode
from repro.net.inet import IPv4Address


@dataclass
class FaultProfile:
    """Behavioural quirks of one simulated router.

    The default profile is a fully well-behaved router.  Profiles are
    mutable configuration, not state: the random stream for response
    loss lives here so that each router misbehaves independently but
    reproducibly under a seed.
    """

    silent: bool = False
    zero_ttl_forwarding: bool = False
    unreachable_code: UnreachableCode = UnreachableCode.HOST_UNREACHABLE
    fake_source_address: IPv4Address | None = None
    response_loss_rate: float = 0.0
    loss_seed: int = 0
    #: Maximum ICMP responses per second (token-style: one response per
    #: 1/rate seconds).  0 disables the limit.  Real routers rate-limit
    #: ICMP generation, which is a major source of mid-route stars when
    #: several traceroutes transit one box closely in time.
    icmp_rate_limit: float = 0.0
    _loss_rng: random.Random = field(init=False, repr=False, default=None)
    _last_response_at: float = field(init=False, repr=False,
                                     default=float("-inf"))

    def __post_init__(self) -> None:
        if not 0.0 <= self.response_loss_rate <= 1.0:
            raise ValueError(
                f"response_loss_rate must be in [0,1]: {self.response_loss_rate}"
            )
        if self.icmp_rate_limit < 0.0:
            raise ValueError(
                f"icmp_rate_limit must be >= 0: {self.icmp_rate_limit}"
            )
        self._loss_rng = random.Random(self.loss_seed)

    def response_is_lost(self) -> bool:
        """Draw one loss decision for a generated response."""
        if self.response_loss_rate <= 0.0:
            return False
        return self._loss_rng.random() < self.response_loss_rate

    def allow_response_at(self, now: float) -> bool:
        """Rate-limit gate: may the router answer at time ``now``?

        Consumes the slot when it grants one, so a burst of probes
        closer together than ``1 / icmp_rate_limit`` seconds gets only
        its first response — the rest appear as stars.
        """
        if self.icmp_rate_limit <= 0.0:
            return True
        if now - self._last_response_at >= 1.0 / self.icmp_rate_limit:
            self._last_response_at = now
            return True
        return False

    @property
    def well_behaved(self) -> bool:
        """True when no quirk is enabled."""
        return not (
            self.silent
            or self.zero_ttl_forwarding
            or self.fake_source_address is not None
            or self.response_loss_rate > 0.0
        )
