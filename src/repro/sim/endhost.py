"""End hosts: traceroute destinations and the measurement vantage point.

A :class:`Host` answers probes the way the paper's destinations do —
UDP to a high port draws Port Unreachable (ending a UDP trace), Echo
Request draws Echo Reply ("pingable"), TCP SYN draws SYN-ACK or RST
depending on whether the port is open.

:class:`MeasurementHost` is the vantage point: everything addressed to
it is delivered up to the :class:`repro.sim.socketapi.ProbeSocket`
rather than auto-answered, and it originates probes through a single
gateway interface.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.errors import TopologyError
from repro.net.icmp import ICMPEchoRequest
from repro.net.inet import IPv4Address
from repro.net.ipv4 import DEFAULT_HOST_TTL
from repro.net.packet import Packet
from repro.net.tcp import TCPFlags, TCPHeader
from repro.net.udp import UDPHeader
from repro.sim.node import Action, Deliver, Drop, Interface, Node, Transmit

if TYPE_CHECKING:  # pragma: no cover - typing-only imports
    from repro.sim.network import Network


class Host(Node):
    """A destination host at the edge of the network.

    ``pingable=False`` models the unused/filtered addresses the paper
    deliberately excluded from its destination list (tracing toward
    them inflates anomaly counts, [Xia et al. 2005]).
    """

    def __init__(
        self,
        name: str,
        pingable: bool = True,
        udp_responds: bool = True,
        open_tcp_ports: set[int] | None = None,
        icmp_initial_ttl: int = DEFAULT_HOST_TTL,
        **node_kwargs,
    ) -> None:
        super().__init__(name, icmp_initial_ttl=icmp_initial_ttl, **node_kwargs)
        self.pingable = pingable
        #: False models a firewalled host: answers pings but silently
        #: drops UDP probes, so UDP traces toward it end in stars — the
        #: paper's "stars typically appear at the ends of routes".
        self.udp_responds = udp_responds
        self.open_tcp_ports = open_tcp_ports if open_tcp_ports is not None else {80}

    @property
    def address(self) -> IPv4Address:
        """The host's (single) address; its traceroute identity."""
        if not self.interfaces:
            raise TopologyError(f"host {self.name} has no interface yet")
        return self.interfaces[0].address

    def receive(
        self,
        packet: Packet,
        in_interface: Interface | None,
        network: "Network",
    ) -> list[Action]:
        if packet.dst not in self.addresses:
            return [Drop(self, packet, "host does not forward")]
        return self.local_deliver(packet, in_interface)

    def local_deliver(
        self, packet: Packet, in_interface: Interface | None
    ) -> list[Action]:
        transport = packet.transport
        if isinstance(transport, ICMPEchoRequest) and not self.pingable:
            return [Drop(self, packet, "host is not pingable")]
        if isinstance(transport, UDPHeader) and not self.udp_responds:
            return [Drop(self, packet, "host firewalls UDP")]
        if isinstance(transport, TCPHeader):
            return self._answer_tcp(packet, in_interface)
        return super().local_deliver(packet, in_interface)

    def _answer_tcp(
        self, packet: Packet, in_interface: Interface | None
    ) -> list[Action]:
        """SYN to an open port → SYN-ACK; otherwise → RST-ACK."""
        if self.faults.silent:
            return [Drop(self, packet, "silent host")]
        request = packet.transport
        if request.dst_port in self.open_tcp_ports:
            flags = int(TCPFlags.SYN | TCPFlags.ACK)
        else:
            flags = int(TCPFlags.RST | TCPFlags.ACK)
        answer = TCPHeader(
            src_port=request.dst_port,
            dst_port=request.src_port,
            seq=0x1000 + self.peek_ip_id(packet.src),
            ack=(request.seq + 1) & 0xFFFFFFFF,
            flags=flags,
        )
        response = Packet.make(
            src=self.response_source_for_tcp(packet),
            dst=packet.src,
            transport=answer,
            ttl=self.icmp_initial_ttl,
            identification=self.next_ip_id(packet.src),
        )
        return self._emit_response(response, packet)

    def response_source_for_tcp(self, packet: Packet) -> IPv4Address:
        """TCP answers come from the probed address itself."""
        if self.faults.fake_source_address is not None:
            return self.faults.fake_source_address
        return packet.dst

    def dispatch(self, packet: Packet, network: "Network") -> list[Action]:
        """Send a locally-generated packet out the (single) uplink."""
        if not self.interfaces:
            raise TopologyError(f"host {self.name} has no interface")
        return [Transmit(self.interfaces[0], packet)]


class MeasurementHost(Host):
    """The traceroute vantage point (the paper's source ``S``).

    Does not auto-answer anything: every packet addressed to it is a
    :class:`Deliver` action, surfaced to the probe socket.
    """

    def __init__(self, name: str = "S", **host_kwargs) -> None:
        super().__init__(name, **host_kwargs)

    def local_deliver(
        self, packet: Packet, in_interface: Interface | None
    ) -> list[Action]:
        return [Deliver(self, packet)]
