"""The raw-socket stand-in: how tracers talk to the simulated network.

A real traceroute builds probe packets with raw sockets and receives
ICMP responses asynchronously.  :class:`ProbeSocket` reproduces that
contract: it accepts *bytes* (which it parses with the same header
classes the tracer used to build them — any malformed probe fails here,
not deep inside a router), injects the packet at the measurement host,
and returns the response bytes that came back, if any, plus the
round-trip time.

Timing follows the paper's setup: the caller waits up to ``timeout``
(default 2 s) for a response; the shared clock advances by the RTT on
success and by the full timeout on silence.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import TracerError
from repro.net.packet import Packet
from repro.sim.endhost import MeasurementHost
from repro.sim.network import Network

#: The paper's per-hop response timeout: "waiting up to 2 sec. to
#: receive a reply at one hop before sending a probe to the subsequent
#: hop".
DEFAULT_TIMEOUT = 2.0


@dataclass
class ProbeResponse:
    """A response that reached the measurement host."""

    packet: Packet
    raw: bytes
    rtt: float
    received_at: float


def require_vantage_point(network: Network, host: MeasurementHost) -> None:
    """Reject a vantage point that is not wired into ``network``."""
    if host.name not in network.nodes:
        raise TracerError(
            f"measurement host {host.name!r} is not part of the network"
        )


def parse_probe(probe_bytes: bytes, host: MeasurementHost) -> Packet:
    """Parse and validate probe bytes at the socket boundary.

    Shared by the blocking and the non-blocking socket: the bytes must
    parse as a packet sourced at the vantage point — a malformed probe
    fails here, not deep inside a router.
    """
    probe = Packet.parse(probe_bytes)
    if probe.src != host.address:
        raise TracerError(
            f"probe source {probe.src} is not the vantage point "
            f"address {host.address}"
        )
    return probe


class ProbeSocket:
    """Send probe bytes from the vantage point; receive response bytes."""

    def __init__(
        self,
        network: Network,
        host: MeasurementHost,
        timeout: float = DEFAULT_TIMEOUT,
    ) -> None:
        require_vantage_point(network, host)
        self.network = network
        self.host = host
        self.timeout = timeout
        self.probes_sent = 0
        self.responses_received = 0

    @property
    def source_address(self):
        """The vantage point's IP address (probe Source Address)."""
        return self.host.address

    def send_probe(self, probe_bytes: bytes) -> ProbeResponse | None:
        """Send one probe; block (in simulated time) for its response.

        Returns None on timeout — a star in traceroute output.  The
        probe must parse as a valid packet sourced at the vantage point.
        """
        probe = parse_probe(probe_bytes, self.host)
        self.probes_sent += 1
        result = self.network.inject(probe, at=self.host)
        deliveries = result.delivered_to(self.host)
        if not deliveries:
            self.network.clock.advance(self.timeout)
            return None
        first = min(deliveries, key=lambda d: d.elapsed)
        if first.elapsed > self.timeout:
            # The response exists but arrives after the tracer gave up.
            self.network.clock.advance(self.timeout)
            return None
        raw = first.packet.build()
        parsed = Packet.parse(raw, verify=False)
        self.network.clock.advance(first.elapsed)
        self.responses_received += 1
        return ProbeResponse(
            packet=parsed,
            raw=raw,
            rtt=first.elapsed,
            received_at=self.network.clock.now,
        )
