"""A fluent builder for simulated networks.

Hand-wiring a network means: create nodes, give every link endpoint an
address in a shared /30, connect interfaces, and install routes in both
directions.  :class:`TopologyBuilder` automates the repetitive parts
while keeping routing decisions explicit:

- :meth:`connect` allocates a /30 subnet (or uses the one you pass) and
  returns the two new interfaces;
- :meth:`chain` wires a linear run of nodes and, given the destination
  prefix, installs "down" routes along it and "up" default routes back;
- :meth:`fan_out` / :meth:`fan_in` build the parallel branches of a
  load-balanced diamond, leaving the balanced route entry to you (one
  explicit :meth:`balanced_route` call).

The builder works for both the hand-sized figure topologies and the
generated internet (which supplies its own per-AS address blocks).
"""

from __future__ import annotations

from typing import Iterable, Sequence

from repro.errors import TopologyError
from repro.net.inet import IPv4Address, Prefix
from repro.sim.balancer import BalancerPolicy
from repro.sim.clock import SimClock
from repro.sim.endhost import Host, MeasurementHost
from repro.sim.faults import FaultProfile
from repro.sim.middlebox import NatBox
from repro.sim.network import Network
from repro.sim.node import Interface, Node
from repro.sim.router import Router


class TopologyBuilder:
    """Build a :class:`repro.sim.network.Network` incrementally."""

    def __init__(
        self,
        name: str = "net",
        clock: SimClock | None = None,
        link_block: str = "10.200.0.0/14",
    ) -> None:
        self.net = Network(clock=clock, name=name)
        self._link_base = int(Prefix(link_block).network)
        self._link_limit = self._link_base + Prefix(link_block).size
        self._next_subnet = self._link_base

    # ------------------------------------------------------------------
    # nodes
    # ------------------------------------------------------------------
    def source(
        self, name: str = "S", address: str | IPv4Address = "10.0.0.1"
    ) -> MeasurementHost:
        """Create the measurement vantage point with its address."""
        host = MeasurementHost(name)
        host.add_interface(address)
        self.net.add_node(host)
        return host

    def router(self, name: str, **kwargs) -> Router:
        """Create a router (kwargs pass through: faults, respond_from...)."""
        router = Router(name, **kwargs)
        self.net.add_node(router)
        return router

    def host(
        self, name: str, address: str | IPv4Address, **kwargs
    ) -> Host:
        """Create a destination host with its address."""
        host = Host(name, **kwargs)
        host.add_interface(address)
        self.net.add_node(host)
        return host

    def nat(self, name: str, **kwargs) -> NatBox:
        """Create a NAT box (interface 0 = external, added at connect)."""
        nat = NatBox(name, **kwargs)
        self.net.add_node(nat)
        return nat

    # ------------------------------------------------------------------
    # wiring
    # ------------------------------------------------------------------
    def connect(
        self,
        a: Node,
        b: Node,
        subnet: Prefix | str | None = None,
        addresses: tuple[IPv4Address | str, IPv4Address | str] | None = None,
        delay: float = 0.001,
        loss_rate: float = 0.0,
        loss_seed: int = 0,
    ) -> tuple[Interface, Interface]:
        """Link two nodes; allocate interface addresses automatically.

        If ``b`` already has an interface and is a :class:`Host` or
        :class:`MeasurementHost`, its existing interface is reused (a
        host has one address, its identity); routers always get a fresh
        interface per link.
        """
        addr_a, addr_b = self._endpoint_addresses(subnet, addresses)
        iface_a = self._endpoint(a, addr_a)
        iface_b = self._endpoint(b, addr_b)
        self.net.link(iface_a, iface_b, delay=delay, loss_rate=loss_rate,
                      loss_seed=loss_seed)
        return iface_a, iface_b

    def _endpoint_addresses(
        self,
        subnet: Prefix | str | None,
        addresses: tuple[IPv4Address | str, IPv4Address | str] | None,
    ) -> tuple[IPv4Address, IPv4Address]:
        if addresses is not None:
            return IPv4Address(addresses[0]), IPv4Address(addresses[1])
        if subnet is not None:
            prefix = subnet if isinstance(subnet, Prefix) else Prefix(subnet)
            return prefix.network + 1, prefix.network + 2
        if self._next_subnet + 4 > self._link_limit:
            raise TopologyError("builder ran out of link subnets")
        base = self._next_subnet
        self._next_subnet += 4
        return IPv4Address(base + 1), IPv4Address(base + 2)

    def _endpoint(self, node: Node, address: IPv4Address) -> Interface:
        if isinstance(node, (MeasurementHost, Host)) and node.interfaces:
            iface = node.interfaces[0]
            if iface.link is not None:
                raise TopologyError(
                    f"host {node.name} is already connected"
                )
            return iface
        iface = node.add_interface(address)
        # Network indexes addresses at link time, but index now too so
        # collisions surface at the earliest possible moment.
        self.net.index_interface(iface)
        return iface

    # ------------------------------------------------------------------
    # routing helpers
    # ------------------------------------------------------------------
    def chain(
        self,
        nodes: Sequence[Node],
        dst_prefix: Prefix | str,
        delay: float = 0.001,
    ) -> list[tuple[Interface, Interface]]:
        """Wire ``nodes`` in a line and route ``dst_prefix`` down it.

        Every router gets a route for ``dst_prefix`` toward the next
        node and a default route toward the previous one (back toward
        the source side).  Returns the interface pairs per segment.
        """
        if len(nodes) < 2:
            raise TopologyError("a chain needs at least two nodes")
        prefix = dst_prefix if isinstance(dst_prefix, Prefix) else Prefix(dst_prefix)
        pairs = []
        for left, right in zip(nodes, nodes[1:]):
            pairs.append(self.connect(left, right, delay=delay))
        for i, node in enumerate(nodes):
            if not isinstance(node, Router):
                continue
            if i + 1 < len(nodes):
                down_iface = pairs[i][0]
                node.add_route(prefix, down_iface)
            if i > 0:
                up_iface = pairs[i - 1][1]
                node.add_default_route(up_iface)
        return pairs

    def branch(
        self,
        split: Router,
        path_nodes: Sequence[Router],
        join: Router,
        dst_prefix: Prefix | str,
        delay: float = 0.001,
    ) -> tuple[Interface, Interface]:
        """Wire one branch of a diamond: split → path_nodes... → join.

        Routes ``dst_prefix`` along the branch and default routes back
        toward ``split``.  Returns (split-side egress interface on
        ``split``, join-side ingress interface on ``join``) — the egress
        is what you hand to :meth:`balanced_route`.
        """
        prefix = dst_prefix if isinstance(dst_prefix, Prefix) else Prefix(dst_prefix)
        sequence: list[Node] = [split, *path_nodes, join]
        pairs = [self.connect(a, b, delay=delay)
                 for a, b in zip(sequence, sequence[1:])]
        for i, node in enumerate(path_nodes, start=1):
            node.add_route(prefix, pairs[i][0])
            node.add_default_route(pairs[i - 1][1])
        return pairs[0][0], pairs[-1][1]

    def balanced_route(
        self,
        router: Router,
        prefix: Prefix | str,
        egresses: Iterable[Interface],
        policy: BalancerPolicy,
    ) -> None:
        """Install (or replace) the load-balanced entry on ``router``."""
        router.replace_route(prefix, list(egresses), policy)

    # ------------------------------------------------------------------
    # finishing
    # ------------------------------------------------------------------
    def build(self) -> Network:
        """Validate wiring and return the network.

        Checks that every interface is linked — an unlinked interface is
        almost always a forgotten :meth:`connect` and would silently eat
        packets at runtime.
        """
        for node in self.net.nodes.values():
            for iface in node.interfaces:
                if iface.link is None:
                    raise TopologyError(
                        f"interface {iface.label} was never connected"
                    )
        return self.net


def make_faulty(router: Router, **fault_kwargs) -> Router:
    """Attach a fault profile to ``router`` and return it (fluent aid)."""
    router.faults = FaultProfile(**fault_kwargs)
    return router
