"""Scenario construction: builders, the paper's figures, and an internet.

- :class:`repro.topology.builder.TopologyBuilder` — fluent wiring of
  networks (links get /30 subnets automatically, chains get routes).
- :mod:`repro.topology.figures` — the exact example topologies of the
  paper's Figures 1, 3, 4, 5, and 6, with the hop numbering preserved.
- :mod:`repro.topology.internet` — a seeded, internet-like topology
  with ASes, a tier hierarchy, load balancers, NATs, and faulty
  routers, used for the Section 3/4 campaign reproduction.
- :class:`repro.topology.asmap.AsMapper` — longest-prefix-match
  IP-to-AS mapping (the stand-in for Mao et al.'s technique).
"""

from repro.topology.builder import TopologyBuilder
from repro.topology.asmap import AsMapper
from repro.topology import figures
from repro.topology.internet import InternetConfig, InternetTopology, generate_internet

__all__ = [
    "TopologyBuilder",
    "AsMapper",
    "figures",
    "InternetConfig",
    "InternetTopology",
    "generate_internet",
]
