"""A seeded, internet-like topology for campaign-scale experiments.

The paper traces from one vantage point (LIP6, behind the single-homed
French academic network) toward 5,000 destinations spread over 1,122
ASes, crossing all nine tier-1 ISPs.  This generator reproduces that
*shape* at a configurable scale:

- **AS hierarchy** — ``n_tier1`` fully-meshed tier-1 ASes, ``n_transit``
  single-homed transit ASes, ``n_stub`` stub ASes holding the
  destination hosts, plus a dedicated "university" stub (the vantage
  point) behind its own "Renater" transit.
- **Per-AS internals** — entry and exit routers around either a plain
  core router or a load-balanced diamond: 2-16 parallel branches under
  a per-flow (majority) or per-packet (minority) policy, occasionally
  with unequal branch lengths — the configuration that makes classic
  traceroute report loops (paper Fig. 3).
- **Edge quirks** — NAT gateways in front of some stubs (address
  rewriting, Fig. 5), plus silent, zero-TTL-forwarding, fake-address,
  and lossy routers at configurable rates.
- **Dynamics** — optional route changes, route withdrawals, and
  transient forwarding loops scheduled across a time horizon.

Everything is deterministic under ``InternetConfig.seed``.  Addressing
is hierarchical — AS *k* owns the ``5.k.0.0/16`` block (hosts in the
lower half, link subnets in the upper half) — so routing is pure
prefix-based default-up / specific-down with no path computation, and
the IP-to-AS ground truth falls out of the allocation.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Callable, Optional

from repro.errors import TopologyError
from repro.faults.profile import NetworkFaultProfile, install_fault_profile
from repro.net.inet import IPv4Address, Prefix
from repro.sim.balancer import BalancerPolicy, PerFlowPolicy, PerPacketPolicy
from repro.sim.dynamics import ForwardingLoopWindow, RouteChange, RouteWithdrawal
from repro.sim.endhost import Host, MeasurementHost
from repro.sim.faults import FaultProfile
from repro.sim.middlebox import NatBox
from repro.sim.network import Network
from repro.sim.node import Interface
from repro.sim.router import Router
from repro.topology.asmap import AsMapper
from repro.topology.builder import TopologyBuilder

#: Base of the per-AS /16 blocks: AS k owns ``5.k.0.0/16``.
AS_BLOCK_BASE = 5 << 24

#: Base of the private pools used behind NAT gateways.
NAT_POOL_BASE = int(IPv4Address("172.16.0.0"))


@dataclass
class InternetConfig:
    """Knobs for the generated internet.

    The defaults give a ~60-AS, ~200-destination internet that runs a
    multi-round campaign in seconds.  The paper-shape ratios (how many
    ASes balance, how wide, how often per-packet) follow Section 4's
    observations: load balancing seen in 7 of 9 tier-1s and 17 of 64
    top regional ASes, Juniper supporting up to 16 equal-cost paths.
    """

    seed: int = 1
    n_tier1: int = 9
    n_transit: int = 18
    n_stub: int = 40
    dests_per_stub: int = 8
    #: Number of measurement vantage points.  Each gets its own
    #: university stub behind its own clean transit, attached to a
    #: *distinct* tier-1 (round-robin from the first vantage's random
    #: provider), so different vantages cross different core paths —
    #: the paper's two-source setup (LIP6 and a second site), scaled.
    #: With the default of 1 the generated internet is draw-for-draw
    #: identical to what earlier versions produced.
    n_vantages: int = 1
    # Load balancing prevalence per tier (paper: 7/9 tier-1s, 17/64 top ASes).
    p_balanced_tier1: float = 7 / 9
    p_balanced_transit: float = 0.27
    p_balanced_stub: float = 0.10
    #: Fraction of balancers that are per-packet rather than per-flow.
    p_per_packet: float = 0.04
    #: Number of stub ASes whose diamond has one branch one hop longer
    #: (the Fig. 3 configuration — every hop downstream of such a
    #: diamond can repeat, so classic traceroute reports loops there).
    #: Unequal-length ECMP lives at the edge: a single unequal diamond
    #: in the core would shift every downstream hop for most routes and
    #: blow the paper's 5.3 % loop rate by an order of magnitude.
    n_loop_stub_diamonds: int = 6
    #: Number of stub ASes whose diamond has one branch two hops longer
    #: (the same mechanics produce the rarer *cycles*, Sec. 4.2).
    n_cycle_stub_diamonds: int = 1
    #: Diamond widths drawn uniformly from this pool (max 16, Juniper).
    width_pool: tuple[int, ...] = (2, 2, 2, 2, 3, 3, 4, 8, 16)
    #: Probability that a non-join router answers from a fixed address
    #: (loopback-style) rather than its ingress interface.  Join
    #: routers of diamonds always answer from a fixed address, the
    #: assumption behind the paper's Figs. 3 and 6.
    p_fixed_response: float = 0.4
    #: Number of destinations behind a masquerading NAT gateway (each
    #: produces one address-rewriting loop per trace, Fig. 5).  A count
    #: rather than a rate: these causes are tiny in the paper (2.8 % of
    #: loops over 5,000 destinations) and a rate would round to zero at
    #: simulation scale.
    n_nat_dests: int = 1
    #: Number of destinations behind a zero-TTL-forwarding access
    #: router (one Fig. 4 loop per trace each).
    n_zero_ttl_dests: int = 2
    #: Probability that a destination answers pings but firewalls UDP
    #: (trailing stars, the paper's dominant star population).
    p_firewalled_dest: float = 0.08
    # Router quirk rates (fake-address quirks only afflict stub-AS
    # routers: edge boxes).
    p_silent: float = 0.02
    p_fake_address: float = 0.01
    response_loss_rate: float = 0.01
    #: Fraction of routers subject to response loss at the above rate.
    p_lossy: float = 0.3
    # Dynamics (events per hour of campaign horizon; horizon in seconds).
    dynamics_horizon: float = 0.0
    route_changes_per_hour: float = 3.0
    withdrawals_per_hour: float = 1.0
    forwarding_loops_per_hour: float = 1.0
    #: Duration of each transient forwarding loop / withdrawal, seconds.
    event_duration: float = 120.0
    #: Adversarial network condition installed over the built topology
    #: (see :mod:`repro.faults`): in-flight jitter/spikes/duplication on
    #: the delivery path plus router-side token-bucket rate limiting and
    #: correlated loss bursts.  The vantage points' access chains are
    #: always exempt, like they are from the sprinkled quirks above.
    #: None (the default) leaves the topology draw-for-draw identical
    #: to earlier versions.
    fault_profile: Optional[NetworkFaultProfile] = None
    #: Timed fault *phases* — ``((start_time, NetworkFaultProfile),
    #: ...)`` — installed as a :class:`repro.faults.ScheduledProfile`
    #: on the built network's dynamics hook, swapping on the simulated
    #: clock (time-varying pressure for the monitor service).  Plain
    #: data, so shard replicas rebuild the identical calendar.  Layers
    #: over ``fault_profile``: the static profile is the baseline every
    #: inert phase restores.
    fault_phases: Optional[tuple] = None

    def __post_init__(self) -> None:
        if self.n_tier1 < 2:
            raise TopologyError("need at least two tier-1 ASes")
        if max(self.width_pool) > 16:
            raise TopologyError("Juniper caps equal-cost paths at sixteen")
        if self.n_vantages < 1:
            raise TopologyError("need at least one vantage point")


@dataclass
class BalancerInfo:
    """Ground truth about one generated load balancer."""

    router: Router
    policy: BalancerPolicy
    kind: str            # "per-flow" | "per-packet"
    width: int
    equal_lengths: bool
    asn: int


@dataclass
class _DiamondSpec:
    """Pre-drawn layout of one AS's load-balanced diamond.

    Drawing all diamond layouts up front (rather than per-AS while
    building) lets the generator guarantee the configured *fractions*
    of unequal and very-unequal diamonds even in small topologies,
    where independent per-AS coin flips routinely produce none.
    """

    width: int
    per_packet: bool
    per_packet_mode: str
    per_packet_seed: int
    extra_hops: int  # 0 = equal branches, 1 = Fig. 3 loops, 2 = cycles


@dataclass
class _AsSite:
    """One generated AS and the handles routing installation needs."""

    asn: int
    tier: int
    block: Prefix
    entry: Router
    exit: Router
    #: Installs a down-route for a prefix across the internal routers.
    install_down: Callable[[Prefix], None]
    provider: Optional["_AsSite"] = None
    children: list["_AsSite"] = field(default_factory=list)
    hosts: list[Host] = field(default_factory=list)
    balancer: Optional[BalancerInfo] = None
    #: Routers of this AS eligible for fault sprinkling.
    routers: list[Router] = field(default_factory=list)
    #: Interface on the provider's exit router leading here (set at wiring).
    uplink_provider_iface: Optional[Interface] = None

    def cone(self) -> list[Prefix]:
        """This AS's block plus every descendant's (customer cone)."""
        prefixes = [self.block]
        for child in self.children:
            prefixes.extend(child.cone())
        return prefixes


@dataclass
class InternetTopology:
    """The generated internet and its ground truth."""

    network: Network
    source: MeasurementHost
    destinations: list[Host]
    asmap: AsMapper
    config: InternetConfig
    sites: list[_AsSite]
    balancers: list[BalancerInfo]
    nats: list[NatBox]
    faulty: dict[str, list[str]]
    dynamics: list
    #: Every vantage point (``source`` is ``sources[0]``).
    sources: list[MeasurementHost] = field(default_factory=list)

    def __post_init__(self) -> None:
        if not self.sources:
            self.sources = [self.source]

    @property
    def destination_addresses(self) -> list[IPv4Address]:
        """Addresses of every destination host, in generation order."""
        return [h.address for h in self.destinations]

    def site_of(self, asn: int) -> _AsSite:
        """The generated AS with number ``asn``."""
        for site in self.sites:
            if site.asn == asn:
                return site
        raise TopologyError(f"no AS {asn} in this topology")

    def summary(self) -> str:
        """A one-paragraph inventory used by examples and reports."""
        kinds = {}
        for info in self.balancers:
            kinds[info.kind] = kinds.get(info.kind, 0) + 1
        vantages = (f"{len(self.sources)} vantage points, "
                    if len(self.sources) > 1 else "")
        return (
            f"internet(seed={self.config.seed}): "
            f"{len(self.sites)} ASes "
            f"({self.config.n_tier1} tier-1), "
            f"{vantages}"
            f"{len(self.destinations)} destinations, "
            f"{len(self.balancers)} load balancers {kinds}, "
            f"{len(self.nats)} NAT gateways, "
            f"faults: { {k: len(v) for k, v in self.faulty.items()} }"
        )


def generate_internet(config: InternetConfig | None = None) -> InternetTopology:
    """Build the internet described by ``config`` (deterministic)."""
    config = config or InternetConfig()
    rng = random.Random(config.seed)
    builder = TopologyBuilder(name=f"internet-{config.seed}")
    generator = _Generator(builder, config, rng)
    return generator.run()


def schedule_dynamics(
    topology: InternetTopology,
    horizon: float,
    route_changes: int = 0,
    withdrawals: int = 0,
    forwarding_loops: int = 0,
    event_duration: float = 120.0,
    seed: int = 0,
) -> list:
    """Schedule explicit numbers of dynamics events over ``horizon``.

    The config-driven path (``InternetConfig.dynamics_horizon``) needs
    the campaign duration known up front; drivers that measure a dry
    round first can instead call this with the horizon they observed.
    Events are appended to the topology's network and returned.
    """
    events = _schedule_events(
        network=topology.network,
        sites=topology.sites,
        rng=random.Random(seed),
        horizon=horizon,
        route_changes=route_changes,
        withdrawals=withdrawals,
        forwarding_loops=forwarding_loops,
        event_duration=event_duration,
    )
    topology.dynamics.extend(events)
    return events


def _schedule_events(
    network: Network,
    sites: list[_AsSite],
    rng: random.Random,
    horizon: float,
    route_changes: int,
    withdrawals: int,
    forwarding_loops: int,
    event_duration: float,
) -> list:
    """Create and register the three event families."""
    events: list = []

    def times(count: int) -> list[float]:
        return sorted(rng.uniform(0, horizon) for __ in range(count))

    balanced_sites = [s for s in sites if s.balancer is not None]
    for at in times(route_changes if balanced_sites else 0):
        site = rng.choice(balanced_sites)
        l_router = site.balancer.router
        entry = l_router.lookup(site.block.network + 1, now=0.0)
        if entry is None or len(entry.egresses) < 2:
            continue
        pinned = rng.choice(entry.egresses)
        prefix = rng.choice(site.cone())
        # Transient: convergence pins the traffic briefly, then the
        # equal-cost spread resumes.  A permanent pin would silently
        # de-balance the AS for the rest of the campaign.
        event = RouteChange(router=l_router, prefix=prefix,
                            egresses=[pinned], at_time=at,
                            duration=event_duration)
        network.add_dynamics(event)
        events.append(event)
    stub_sites = [s for s in sites if s.hosts]
    for at in times(withdrawals if stub_sites else 0):
        site = rng.choice(stub_sites)
        host = rng.choice(site.hosts)
        event = RouteWithdrawal(
            router=site.exit, prefix=Prefix((host.address, 32)),
            at_time=at, end=at + event_duration,
        )
        network.add_dynamics(event)
        events.append(event)
    chain_sites = [s for s in sites if s.balancer is None]
    for at in times(forwarding_loops if chain_sites else 0):
        site = rng.choice(chain_sites)
        core = next(r for r in site.routers if r.name.endswith("-C"))
        prefix = rng.choice(site.cone())
        # Ring: core sends matching packets back up to entry; entry's
        # normal down-route returns them to core — a two-node loop.
        core_up = core.interfaces[0]
        entry_down = core_up.link.peer_of(core_up)
        event = ForwardingLoopWindow(
            ring=[(core, core_up), (site.entry, entry_down)],
            prefix=prefix, start=at, end=at + event_duration,
        )
        network.add_dynamics(event)
        events.append(event)
    return events


class _Generator:
    """Stateful helper that assembles the internet step by step."""

    def __init__(self, builder: TopologyBuilder, config: InternetConfig,
                 rng: random.Random) -> None:
        self.builder = builder
        self.config = config
        self.rng = rng
        self.sites: list[_AsSite] = []
        self.balancers: list[BalancerInfo] = []
        self.nats: list[NatBox] = []
        self.destinations: list[Host] = []
        self.asmap = AsMapper()
        self.faulty: dict[str, list[str]] = {
            "silent": [], "zero_ttl": [], "fake_address": [], "lossy": [],
        }
        self.dynamics: list = []
        self._next_asn = 1
        self._nat_pool_next = NAT_POOL_BASE
        self._per_site_state: dict[int, dict[str, int]] = {}

    # ------------------------------------------------------------------
    # address bookkeeping
    # ------------------------------------------------------------------
    def _site_state(self, asn: int) -> dict[str, int]:
        block_base = AS_BLOCK_BASE | (asn << 16)
        return self._per_site_state.setdefault(asn, {
            "next_host": block_base + 1,            # lower /17: hosts
            "next_link": block_base + (1 << 15),    # upper /17: /30 links
        })

    def _host_address(self, asn: int) -> IPv4Address:
        state = self._site_state(asn)
        address = IPv4Address(state["next_host"])
        state["next_host"] += 1
        return address

    def _link_addresses(self, asn: int) -> tuple[IPv4Address, IPv4Address]:
        state = self._site_state(asn)
        base = state["next_link"]
        state["next_link"] += 4
        return IPv4Address(base + 1), IPv4Address(base + 2)

    def _nat_pool(self) -> tuple[IPv4Address, IPv4Address]:
        base = self._nat_pool_next
        self._nat_pool_next += 4
        return IPv4Address(base + 1), IPv4Address(base + 2)

    # ------------------------------------------------------------------
    # per-AS internals
    # ------------------------------------------------------------------
    def _respond_from(self) -> str:
        """Draw a response-address policy for a new router."""
        if self.rng.random() < self.config.p_fixed_response:
            return "first"
        return "ingress"

    def _build_site(self, tier: int,
                    spec: Optional[_DiamondSpec]) -> _AsSite:
        asn = self._next_asn
        self._next_asn += 1
        block = Prefix((IPv4Address(AS_BLOCK_BASE | (asn << 16)), 16))
        b = self.builder
        entry = b.router(f"AS{asn}-E", respond_from=self._respond_from())
        exit_ = b.router(f"AS{asn}-X", respond_from=self._respond_from())
        routers = [entry, exit_]
        down_hops: list[tuple[Router, list[Interface], BalancerPolicy | None]] = []
        balancer_info = None

        if spec is not None:
            balancer_info, segment_routers, down_hops = self._build_diamond(
                asn, entry, exit_, spec)
            routers.extend(segment_routers)
        else:
            core = b.router(f"AS{asn}-C", respond_from=self._respond_from())
            routers.append(core)
            e_down, c_up = b.connect(entry, core,
                                     addresses=self._link_addresses(asn))
            c_down, x_up = b.connect(core, exit_,
                                     addresses=self._link_addresses(asn))
            core.add_default_route(c_up)
            exit_.add_default_route(x_up)
            down_hops = [
                (entry, [e_down], None),
                (core, [c_down], None),
            ]

        def install_down(prefix: Prefix,
                         hops=tuple(down_hops)) -> None:
            for router, egresses, policy in hops:
                if len(egresses) > 1:
                    router.add_route(prefix, list(egresses), policy)
                else:
                    router.add_route(prefix, egresses[0])

        site = _AsSite(
            asn=asn, tier=tier, block=block, entry=entry, exit=exit_,
            install_down=install_down, balancer=balancer_info,
            routers=routers,
        )
        if balancer_info is not None:
            self.balancers.append(balancer_info)
        self.asmap.announce(block, asn)
        self.sites.append(site)
        return site

    def _build_diamond(
        self, asn: int, entry: Router, exit_: Router, spec: _DiamondSpec
    ) -> tuple[BalancerInfo, list[Router],
               list[tuple[Router, list[Interface], BalancerPolicy | None]]]:
        """entry → L → (width parallel branches) → J → exit."""
        b = self.builder
        width = spec.width
        per_packet = spec.per_packet
        if per_packet:
            policy: BalancerPolicy = PerPacketPolicy(
                seed=spec.per_packet_seed,
                mode=spec.per_packet_mode,
            )
        else:
            policy = PerFlowPolicy(salt=f"AS{asn}".encode())
        l_router = b.router(f"AS{asn}-L", respond_from=self._respond_from())
        # The join router answers from one fixed address, the paper's
        # Figs. 3/6 assumption — without it neither the unequal-length
        # loop nor most diamonds would show a repeated address at all.
        j_router = b.router(f"AS{asn}-J", respond_from="first")
        routers = [l_router, j_router]

        e_down, l_up = b.connect(entry, l_router,
                                 addresses=self._link_addresses(asn))
        l_router.add_default_route(l_up)
        long_branch = self.rng.randrange(width) if spec.extra_hops else -1
        extra_hops = spec.extra_hops
        l_egresses: list[Interface] = []
        branch_hops: list[tuple[Router, list[Interface], None]] = []
        j_up_iface: Interface | None = None
        for i in range(width):
            length = 1 + extra_hops if i == long_branch else 1
            nodes = [
                b.router(f"AS{asn}-B{i}" + (f"-{j}" if length > 1 else ""),
                         respond_from=self._respond_from())
                for j in range(length)
            ]
            routers.extend(nodes)
            # L → nodes[0] → ... → nodes[-1] → J, with default routes
            # pointing back up and a down-hop record per segment.
            sequence: list[Router] = [l_router, *nodes, j_router]
            for left, right in zip(sequence, sequence[1:]):
                left_down, right_up = b.connect(
                    left, right, addresses=self._link_addresses(asn))
                if left is l_router:
                    l_egresses.append(left_down)
                else:
                    branch_hops.append((left, [left_down], None))
                if right is j_router:
                    if j_up_iface is None:
                        j_up_iface = right_up
                else:
                    right.add_default_route(right_up)
        j_router.add_default_route(j_up_iface)
        j_down, x_up = b.connect(j_router, exit_,
                                 addresses=self._link_addresses(asn))
        exit_.add_default_route(x_up)

        entry_down = e_down
        down_hops: list[tuple[Router, list[Interface], BalancerPolicy | None]] = [
            (entry, [entry_down], None),
            (l_router, l_egresses, policy),
            *branch_hops,
            (j_router, [j_down], None),
        ]
        info = BalancerInfo(
            router=l_router, policy=policy,
            kind="per-packet" if per_packet else "per-flow",
            width=width, equal_lengths=(long_branch == -1), asn=asn,
        )
        return info, routers, down_hops

    # ------------------------------------------------------------------
    # AS tree wiring
    # ------------------------------------------------------------------
    def _wire_customer(self, provider: _AsSite, customer: _AsSite) -> None:
        """Link provider.exit ↔ customer.entry; install cone routes."""
        addr_pair = self._link_addresses(provider.asn)
        p_iface, c_iface = self.builder.connect(
            provider.exit, customer.entry, addresses=addr_pair)
        customer.entry.add_default_route(c_iface)
        customer.provider = provider
        customer.uplink_provider_iface = p_iface
        provider.children.append(customer)

    def _install_cone_routes(self) -> None:
        """After the tree is complete, push cone routes down every AS.

        Every AS also routes its *own* block down internally (entry →
        ... → exit), so responses headed for an address inside the AS —
        notably the vantage point — descend instead of bouncing off the
        default-up route.
        """
        for site in self.sites:
            site.install_down(site.block)
            for child in site.children:
                for prefix in child.cone():
                    site.exit.add_route(prefix,
                                        child.uplink_provider_iface)
                    site.install_down(prefix)

    def _wire_tier1_mesh(self, tier1s: list[_AsSite]) -> None:
        """Full mesh between tier-1 entries, with peer cone routes."""
        peer_ifaces: dict[tuple[int, int], Interface] = {}
        for i, a in enumerate(tier1s):
            for b_site in tier1s[i + 1:]:
                ia, ib = self.builder.connect(
                    a.entry, b_site.entry,
                    addresses=self._link_addresses(a.asn))
                peer_ifaces[(a.asn, b_site.asn)] = ia
                peer_ifaces[(b_site.asn, a.asn)] = ib
        for a in tier1s:
            for b_site in tier1s:
                if a is b_site:
                    continue
                egress = peer_ifaces[(a.asn, b_site.asn)]
                for prefix in b_site.cone():
                    a.entry.add_route(prefix, egress)

    # ------------------------------------------------------------------
    # hosts and NAT edges
    # ------------------------------------------------------------------
    def _attach_hosts(self, stub: _AsSite,
                      nat_indices: set[int],
                      zero_ttl_indices: set[int]) -> None:
        """Attach this stub's destination hosts, some via quirky edges.

        ``nat_indices``/``zero_ttl_indices`` hold *global* destination
        indices selected for the Fig. 5 / Fig. 4 edge configurations.
        """
        for i in range(self.config.dests_per_stub):
            global_index = len(self.destinations)
            address = self._host_address(stub.asn)
            host = self.builder.host(
                f"AS{stub.asn}-D{i}", address,
                udp_responds=self.rng.random()
                >= self.config.p_firewalled_dest,
            )
            if global_index in nat_indices:
                self._wire_host_behind_nat(stub, host, i)
            elif global_index in zero_ttl_indices:
                self._wire_host_behind_zero_ttl(stub, host, i)
            else:
                x_iface, __ = self.builder.connect(
                    stub.exit, host,
                    addresses=self._link_addresses(stub.asn))
                stub.exit.add_route(Prefix((address, 32)), x_iface)
            stub.hosts.append(host)
            self.destinations.append(host)

    def _wire_host_behind_nat(self, stub: _AsSite, host: Host,
                              index: int) -> None:
        """exit → NAT → (private) inner router → host (public).

        The inner router's responses get masqueraded to the NAT's
        external address, so every trace to this host shows the Fig. 5
        rewriting loop (N0, N0) just before the destination.
        """
        prefix = Prefix((host.address, 32))
        nat = self.builder.nat(f"AS{stub.asn}-N{index}")
        x_iface, n_ext = self.builder.connect(
            stub.exit, nat, addresses=self._link_addresses(stub.asn))
        inner = self.builder.router(f"AS{stub.asn}-NR{index}")
        n_int, r_up = self.builder.connect(nat, inner,
                                           addresses=self._nat_pool())
        r_down, __ = self.builder.connect(inner, host,
                                          addresses=self._nat_pool())
        stub.exit.add_route(prefix, x_iface)
        nat.add_route(prefix, n_int)
        nat.add_default_route(n_ext)
        inner.add_route(prefix, r_down)
        inner.add_default_route(r_up)
        stub.routers.extend([nat, inner])
        self.nats.append(nat)

    def _wire_host_behind_zero_ttl(self, stub: _AsSite, host: Host,
                                   index: int) -> None:
        """exit → F (zero-TTL forwarder) → R → host.

        ``F`` forwards expiring probes instead of answering, so ``R``
        answers two consecutive TTLs — the Fig. 4 loop with quoted
        probe TTLs 0 then 1 — on every trace to this host.
        """
        prefix = Prefix((host.address, 32))
        faulty = self.builder.router(
            f"AS{stub.asn}-F{index}",
            faults=FaultProfile(zero_ttl_forwarding=True))
        repeater = self.builder.router(f"AS{stub.asn}-FR{index}")
        x_iface, f_up = self.builder.connect(
            stub.exit, faulty, addresses=self._link_addresses(stub.asn))
        f_down, r_up = self.builder.connect(
            faulty, repeater, addresses=self._link_addresses(stub.asn))
        r_down, __ = self.builder.connect(
            repeater, host, addresses=self._link_addresses(stub.asn))
        stub.exit.add_route(prefix, x_iface)
        faulty.add_route(prefix, f_down)
        faulty.add_default_route(f_up)
        repeater.add_route(prefix, r_down)
        repeater.add_default_route(r_up)
        stub.routers.extend([faulty, repeater])
        self.faulty["zero_ttl"].append(faulty.name)

    # ------------------------------------------------------------------
    # faults and dynamics
    # ------------------------------------------------------------------
    def _sprinkle_faults(self, protected: set[str]) -> None:
        """Assign quirks to routers, never to protected ones.

        Zero-TTL forwarding and fake source addresses are edge-box
        quirks: they only afflict stub-AS routers, so each instance
        touches a handful of destinations (as the paper's small cause
        shares imply).  Silence and response loss can strike anywhere.
        """
        cfg = self.config
        for site in self.sites:
            edge = site.tier == 3
            for router in site.routers:
                if router.name in protected:
                    continue
                if not router.faults.well_behaved:
                    continue  # already configured (zero-TTL edges)
                roll = self.rng.random()
                if roll < cfg.p_silent:
                    router.faults = FaultProfile(silent=True)
                    self.faulty["silent"].append(router.name)
                elif edge and roll < cfg.p_silent + cfg.p_fake_address:
                    fake = IPv4Address("172.30.0.1") + len(
                        self.faulty["fake_address"])
                    router.faults = FaultProfile(fake_source_address=fake)
                    self.faulty["fake_address"].append(router.name)
                elif self.rng.random() < cfg.p_lossy:
                    router.faults = FaultProfile(
                        response_loss_rate=cfg.response_loss_rate,
                        loss_seed=self.rng.randrange(1 << 30),
                    )
                    self.faulty["lossy"].append(router.name)

    def _schedule_dynamics(self, network: Network) -> None:
        cfg = self.config
        horizon = cfg.dynamics_horizon
        if horizon <= 0:
            return
        hours = horizon / 3600.0
        self.dynamics.extend(_schedule_events(
            network=network,
            sites=self.sites,
            rng=self.rng,
            horizon=horizon,
            route_changes=int(round(cfg.route_changes_per_hour * hours)),
            withdrawals=int(round(cfg.withdrawals_per_hour * hours)),
            forwarding_loops=int(round(cfg.forwarding_loops_per_hour * hours)),
            event_duration=cfg.event_duration,
        ))

    # ------------------------------------------------------------------
    # assembly
    # ------------------------------------------------------------------
    def _draw_diamond_plan(
        self,
    ) -> tuple[list[Optional[_DiamondSpec]], list[Optional[_DiamondSpec]],
               list[Optional[_DiamondSpec]]]:
        """Pre-draw every AS's diamond layout, enforcing the unequal
        and very-unequal fractions exactly (rounded, at least one each
        when the fraction is positive and any balancer exists)."""
        cfg = self.config
        rng = self.rng

        def draw(p_balanced: float) -> Optional[_DiamondSpec]:
            if rng.random() >= p_balanced:
                return None
            return _DiamondSpec(
                width=rng.choice(cfg.width_pool),
                per_packet=rng.random() < cfg.p_per_packet,
                per_packet_mode=rng.choice(("random", "round-robin")),
                per_packet_seed=rng.randrange(1 << 30),
                extra_hops=0,
            )

        tier1 = [draw(cfg.p_balanced_tier1) for __ in range(cfg.n_tier1)]
        transit = [draw(cfg.p_balanced_transit) for __ in range(cfg.n_transit)]
        stub = [draw(cfg.p_balanced_stub) for __ in range(cfg.n_stub)]
        # Core diamonds stay equal-length (they produce diamonds,
        # missing nodes, and false links — not loops).  The unequal
        # configurations go to stubs, each covering only its own
        # destinations; promote unbalanced stubs as needed.
        wanted = cfg.n_loop_stub_diamonds + cfg.n_cycle_stub_diamonds
        wanted = min(wanted, len(stub))
        stub_balanced = [i for i, s in enumerate(stub) if s is not None]
        unbalanced = [i for i, s in enumerate(stub) if s is None]
        rng.shuffle(unbalanced)
        while len(stub_balanced) < wanted and unbalanced:
            index = unbalanced.pop()
            stub[index] = _DiamondSpec(
                width=2, per_packet=False, per_packet_mode="random",
                per_packet_seed=rng.randrange(1 << 30), extra_hops=0,
            )
            stub_balanced.append(index)
        rng.shuffle(stub_balanced)
        cycle_count = min(cfg.n_cycle_stub_diamonds, len(stub_balanced))
        for index in stub_balanced[:cycle_count]:
            stub[index].extra_hops = 2
        loop_count = min(cfg.n_loop_stub_diamonds,
                         len(stub_balanced) - cycle_count)
        for index in stub_balanced[cycle_count:cycle_count + loop_count]:
            stub[index].extra_hops = 1
        return tier1, transit, stub

    def run(self) -> InternetTopology:
        cfg = self.config
        rng = self.rng

        tier1_specs, transit_specs, stub_specs = self._draw_diamond_plan()
        tier1s = [self._build_site(1, spec) for spec in tier1_specs]
        transits = [self._build_site(2, spec) for spec in transit_specs]
        stubs = [self._build_site(3, spec) for spec in stub_specs]
        # The vantage-point side: one university stub per vantage, each
        # behind its own "Renater"-style transit that is never
        # load-balanced (the paper's first hops are clean).
        renaters: list[_AsSite] = []
        universities: list[_AsSite] = []
        for __ in range(cfg.n_vantages):
            renaters.append(self._build_site(2, None))
            universities.append(self._build_site(3, None))

        # Every tier-1 gets at least one transit customer (the paper's
        # traces crossed all nine tier-1s) and every transit at least
        # one stub where counts allow; remaining customers go randomly.
        tier1_cycle = list(tier1s)
        rng.shuffle(tier1_cycle)
        for index, transit in enumerate(transits):
            if index < len(tier1_cycle):
                provider = tier1_cycle[index]
            else:
                provider = rng.choice(tier1s)
            self._wire_customer(provider, transit)
        # The first vantage's transit draws its tier-1 provider from the
        # RNG (draw-compatible with single-vantage topologies); further
        # vantages take the following tier-1s round-robin, guaranteeing
        # distinct core entry points wherever counts allow.
        anchor = rng.randrange(len(tier1s))
        for index, renater in enumerate(renaters):
            provider = tier1s[(anchor + index) % len(tier1s)]
            self._wire_customer(provider, renater)
        transit_cycle = list(transits)
        rng.shuffle(transit_cycle)
        for index, stub in enumerate(stubs):
            if index < len(transit_cycle):
                provider = transit_cycle[index]
            else:
                provider = rng.choice(transits)
            self._wire_customer(provider, stub)
        for renater, university in zip(renaters, universities):
            self._wire_customer(renater, university)

        # Pick which destinations get the rare edge configurations.
        total_dests = cfg.n_stub * cfg.dests_per_stub
        special_count = min(total_dests,
                            cfg.n_nat_dests + cfg.n_zero_ttl_dests)
        special = rng.sample(range(total_dests), special_count)
        nat_indices = set(special[:cfg.n_nat_dests])
        zero_ttl_indices = set(special[cfg.n_nat_dests:])
        for stub in stubs:
            self._attach_hosts(stub, nat_indices, zero_ttl_indices)

        sources: list[MeasurementHost] = []
        for index, university in enumerate(universities):
            source_address = self._host_address(university.asn)
            source = MeasurementHost("S" if index == 0 else f"S{index}")
            source.add_interface(source_address)
            self.builder.net.add_node(source)
            u_iface, __ = self.builder.connect(
                university.exit, source,
                addresses=self._link_addresses(university.asn))
            university.exit.add_route(Prefix((source_address, 32)), u_iface)
            sources.append(source)

        self._install_cone_routes()
        self._wire_tier1_mesh(tier1s)

        # Never break any vantage point's own access path.
        protected: set[str] = set()
        for site in (*universities, *renaters):
            protected |= {r.name for r in site.routers}
        self._sprinkle_faults(protected)

        network = self.builder.build()
        if cfg.fault_profile is not None:
            install_fault_profile(network, cfg.fault_profile,
                                  protected=protected)
        if cfg.fault_phases:
            from repro.faults.schedule import ScheduledProfile

            network.add_dynamics(ScheduledProfile(
                cfg.fault_phases, protected=protected))
        self._schedule_dynamics(network)
        return InternetTopology(
            network=network,
            source=sources[0],
            sources=sources,
            destinations=self.destinations,
            asmap=self.asmap,
            config=cfg,
            sites=self.sites,
            balancers=self.balancers,
            nats=self.nats,
            faulty=self.faulty,
            dynamics=self.dynamics,
        )
