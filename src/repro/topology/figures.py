"""The example topologies of the paper's figures, wired exactly.

Every figure places its interesting region at hops 6-9 from the source
(the paper's campaign skips the university network by starting at TTL
2; its figures label the load balancer's hop as #6).  We reproduce the
numbering with a five-router lead-in chain ``H1..H5``.

The functions return a :class:`FigureTopology` whose ``nodes`` dict
uses the paper's router names, so tests can assert on e.g.
``fig.nodes["A"].interface(0).address`` — the paper's ``A0``.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.net.inet import IPv4Address
from repro.sim.balancer import BalancerPolicy, PerFlowPolicy, PerPacketPolicy
from repro.sim.endhost import Host, MeasurementHost
from repro.sim.faults import FaultProfile
from repro.sim.network import Network
from repro.sim.node import Node
from repro.topology.builder import TopologyBuilder

#: Destination prefix used by every figure topology.
DEST_PREFIX = "10.9.0.0/16"

#: Destination host address used by every figure topology.
DEST_ADDRESS = "10.9.0.1"

#: Length of the lead-in chain placing the figure region at hop 6.
LEAD_IN = 5


@dataclass
class FigureTopology:
    """A built figure network plus the handles benches need."""

    network: Network
    source: MeasurementHost
    destination: Host
    nodes: dict[str, Node]
    description: str
    figure: str
    lead_in: int = LEAD_IN
    notes: dict[str, object] = field(default_factory=dict)

    @property
    def destination_address(self) -> IPv4Address:
        """The traced destination address."""
        return self.destination.address

    def address_of(self, label: str) -> IPv4Address:
        """The address behind a paper-style interface label, e.g. ``A0``.

        The label is node name + interface index, as in the figures.
        """
        name = label.rstrip("0123456789")
        index = int(label[len(name):])
        return self.nodes[name].interface(index).address


def _lead_in_chain(builder: TopologyBuilder, count: int = LEAD_IN):
    """Create the H1..Hn chain routers (not yet wired)."""
    return [builder.router(f"H{i}") for i in range(1, count + 1)]


def figure1(
    policy: BalancerPolicy | None = None,
    seed: int = 0,
    all_respond: bool = False,
) -> FigureTopology:
    """Fig. 1: missing nodes/links and false links.

    True topology at hops 6-9::

        L --> A --> C --> E     (top;  C silent)
          \\-> B --> D --/      (bottom; B silent)

    ``B`` and ``C`` send no responses (the figure's premise), so classic
    traceroute can never discover ``B0``/``C0`` and may infer the false
    link ``(A0, D0)``.  Pass ``all_respond=True`` for the variant used
    in the paper's probability computations (0.25 / 0.9375), where both
    hop-7 devices answer.

    The balancer defaults to "purely random" per-packet balancing, the
    paper's modelling assumption for those probabilities.
    """
    builder = TopologyBuilder(name="figure1")
    s = builder.source()
    heads = _lead_in_chain(builder)
    l = builder.router("L")
    silent = FaultProfile(silent=True)
    a = builder.router("A")
    b = builder.router("B", faults=None if all_respond else silent)
    c = builder.router("C", faults=None if all_respond else silent)
    d = builder.router("D")
    e = builder.router("E")
    dst = builder.host("DST", DEST_ADDRESS)

    builder.chain([s, *heads, l], DEST_PREFIX)
    top = builder.branch(l, [a, c], e, DEST_PREFIX)
    bottom = builder.branch(l, [b, d], e, DEST_PREFIX)
    balancer = policy or PerPacketPolicy(seed=seed, mode="random")
    builder.balanced_route(l, DEST_PREFIX, [top[0], bottom[0]], balancer)
    # E: onward to the destination, back via the top branch.
    e_down, __ = builder.connect(e, dst)
    e.add_route(DEST_PREFIX, e_down)
    e.add_default_route(top[1])
    net = builder.build()
    return FigureTopology(
        network=net,
        source=s,
        destination=dst,
        nodes={"L": l, "A": a, "B": b, "C": c, "D": d, "E": e,
               **{h.name: h for h in heads}},
        description="Fig. 1: load balancer hides nodes and fabricates links",
        figure="1",
        notes={
            "silent": [] if all_respond else ["B", "C"],
            "false_link": ("A0", "D0"),
            "p_missing_hop7_device": 0.25,
            "p_ambiguous_links": 0.9375,
        },
    )


def figure3(
    policy: BalancerPolicy | None = None,
    seed: int = 0,
) -> FigureTopology:
    """Fig. 3: a loop caused by load balancing over unequal-length paths.

    True topology::

        L --> A --------> E      (top: E at hop 8)
          \\-> B --> C --> E      (bottom: E at hop 9)

    Per the paper, "we assume ... that both responses are generated from
    the same interface, E0": E answers from a fixed address.  When
    probes 7 and 8 ride the top path and probe 9 the bottom one, classic
    traceroute reports ``E0`` twice in a row — a loop.
    """
    builder = TopologyBuilder(name="figure3")
    s = builder.source()
    heads = _lead_in_chain(builder)
    l = builder.router("L")
    a = builder.router("A")
    b = builder.router("B")
    c = builder.router("C")
    e = builder.router("E", respond_from="first")
    dst = builder.host("DST", DEST_ADDRESS)

    builder.chain([s, *heads, l], DEST_PREFIX)
    top = builder.branch(l, [a], e, DEST_PREFIX)
    bottom = builder.branch(l, [b, c], e, DEST_PREFIX)
    balancer = policy or PerFlowPolicy(salt=seed.to_bytes(4, "big"))
    builder.balanced_route(l, DEST_PREFIX, [top[0], bottom[0]], balancer)
    e_down, __ = builder.connect(e, dst)
    e.add_route(DEST_PREFIX, e_down)
    e.add_default_route(top[1])
    net = builder.build()
    return FigureTopology(
        network=net,
        source=s,
        destination=dst,
        nodes={"L": l, "A": a, "B": b, "C": c, "E": e,
               **{h.name: h for h in heads}},
        description="Fig. 3: unequal-length balanced paths make E0 repeat",
        figure="3",
        notes={"loop_address_label": "E0"},
    )


def figure4() -> FigureTopology:
    """Fig. 4: a loop caused by zero-TTL forwarding.

    Chain ``S .. L(6) - F(7) - A(8) - B(9) - DST``, with ``F``
    misconfigured: it forwards packets whose TTL it decremented to zero
    instead of discarding them.  ``A`` therefore answers both the hop-7
    probe (quoting probe TTL 0) and the hop-8 probe (probe TTL 1) —
    the same address twice, with the tell-tale quoted-TTL signature.
    """
    builder = TopologyBuilder(name="figure4")
    s = builder.source()
    heads = _lead_in_chain(builder)
    l = builder.router("L")
    f = builder.router("F", faults=FaultProfile(zero_ttl_forwarding=True))
    a = builder.router("A")
    b = builder.router("B")
    dst = builder.host("DST", DEST_ADDRESS)
    builder.chain([s, *heads, l, f, a, b, dst], DEST_PREFIX)
    net = builder.build()
    return FigureTopology(
        network=net,
        source=s,
        destination=dst,
        nodes={"L": l, "F": f, "A": a, "B": b,
               **{h.name: h for h in heads}},
        description="Fig. 4: zero-TTL forwarding makes A0 repeat (probe TTL 0, then 1)",
        figure="4",
        notes={"faulty": "F", "loop_address_label": "A0",
               "probe_ttls": (0, 1)},
    )


def figure5() -> FigureTopology:
    """Fig. 5: a loop caused by address rewriting behind a NAT.

    Chain ``S .. A(6) - N(7, NAT) - B(8) - C(9) - DST(10)`` with ``B``,
    ``C``, and the destination on private addresses behind ``N``.  All
    responses from behind the gateway appear to come from ``N0``; the
    response TTL keeps decreasing (250, 249, 248, 247 at hops 6-9 with
    everything using initial TTL 255), which is how Paris traceroute
    diagnoses the rewrite.
    """
    builder = TopologyBuilder(name="figure5")
    s = builder.source()
    heads = _lead_in_chain(builder)
    a = builder.router("A")
    n = builder.nat("N")
    b = builder.router("B")
    c = builder.router("C")
    dst = builder.host("DST", "192.168.9.1")
    inside = "192.168.0.0/16"

    builder.chain([s, *heads, a], inside)
    # A -> N (N's first interface = external side).
    a_down, n_ext = builder.connect(a, n)
    a.add_route(inside, a_down)
    # N -> B -> C -> DST on private addressing.
    n_int, b_up = builder.connect(n, b, subnet="192.168.100.0/30")
    b_down, c_up = builder.connect(b, c, subnet="192.168.100.4/30")
    c_down, __ = builder.connect(c, dst, subnet="192.168.100.8/30")
    n.add_route(inside, n_int)
    n.add_default_route(n_ext)
    b.add_route(inside, b_down)
    b.add_default_route(b_up)
    c.add_route(inside, c_down)
    c.add_default_route(c_up)
    net = builder.build()
    return FigureTopology(
        network=net,
        source=s,
        destination=dst,
        nodes={"A": a, "N": n, "B": b, "C": c,
               **{h.name: h for h in heads}},
        description="Fig. 5: NAT rewriting shows N0 at hops 7-9, response TTL sliding",
        figure="5",
        notes={"nat": "N", "expected_response_ttls": (250, 249, 248, 247)},
    )


def figure6(
    policy: BalancerPolicy | None = None,
    seed: int = 0,
) -> FigureTopology:
    """Fig. 6: several diamonds from a three-way load balancer.

    True topology at hops 6-9::

        L --> A --> D --> G
          --> B --> E --> G
          --> C --> D --> G      (C shares D with A)

    ``D`` and ``G`` answer from fixed addresses (``D0``/``G0``), as the
    paper's interface labels assume.  Classic traceroute mixing paths
    across probes yields the diamonds {(L0,D0), (L0,E0), (A0,G0),
    (B0,G0)} of the figure; (C0,G0) fails the definition whenever D0 is
    the only address ever seen between C0 and G0.
    """
    builder = TopologyBuilder(name="figure6")
    s = builder.source()
    heads = _lead_in_chain(builder)
    l = builder.router("L")
    a = builder.router("A")
    b = builder.router("B")
    c = builder.router("C")
    d = builder.router("D", respond_from="first")
    e = builder.router("E")
    g = builder.router("G", respond_from="first")
    dst = builder.host("DST", DEST_ADDRESS)

    builder.chain([s, *heads, l], DEST_PREFIX)
    via_a = builder.branch(l, [a], d, DEST_PREFIX)
    via_b = builder.branch(l, [b, e], g, DEST_PREFIX)
    via_c = builder.branch(l, [c], d, DEST_PREFIX)
    balancer = policy or PerPacketPolicy(seed=seed, mode="random")
    builder.balanced_route(
        l, DEST_PREFIX, [via_a[0], via_b[0], via_c[0]], balancer
    )
    # D joins A and C, then continues to G.
    d_down, g_in_from_d = builder.connect(d, g)
    d.add_route(DEST_PREFIX, d_down)
    d.add_default_route(via_a[1])
    # G onward to the destination; back via D.
    g_down, __ = builder.connect(g, dst)
    g.add_route(DEST_PREFIX, g_down)
    g.add_default_route(g_in_from_d)
    net = builder.build()
    return FigureTopology(
        network=net,
        source=s,
        destination=dst,
        nodes={"L": l, "A": a, "B": b, "C": c, "D": d, "E": e, "G": g,
               **{h.name: h for h in heads}},
        description="Fig. 6: three balanced paths produce diamonds",
        figure="6",
        notes={
            "expected_diamonds": [("L0", "D0"), ("L0", "E0"),
                                  ("A0", "G0"), ("B0", "G0")],
            "non_diamond": ("C0", "G0"),
        },
    )
