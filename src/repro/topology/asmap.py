"""IP-to-AS mapping by longest-prefix match.

The paper maps the 90 million response source addresses to AS numbers
with Mao et al.'s technique (routing-table-derived prefix matching,
corrected for known artifacts).  In the simulation the ground truth is
known by construction: the internet generator registers every AS's
prefixes here, and :meth:`AsMapper.lookup` resolves an address the same
way a BGP-table lookup would — most specific prefix wins.

The index groups announced networks by prefix length; a lookup masks
the address at each announced length, longest first, and probes a hash
set — O(number of distinct lengths) per lookup, fast enough for
campaign-scale use (millions of responses).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Optional

from repro.errors import AddressError
from repro.net.inet import MAX_U32, IPv4Address, Prefix


@dataclass(frozen=True)
class AsAssignment:
    """One prefix announced by one AS."""

    prefix: Prefix
    asn: int

    def __post_init__(self) -> None:
        if self.asn <= 0:
            raise AddressError(f"ASN must be positive: {self.asn}")


class AsMapper:
    """Longest-prefix-match address → ASN resolution."""

    def __init__(self, assignments: Iterable[AsAssignment] = ()) -> None:
        self._assignments: list[AsAssignment] = []
        # length -> {network int -> asn}
        self._by_length: dict[int, dict[int, int]] = {}
        for assignment in assignments:
            self.announce(assignment.prefix, assignment.asn)

    def announce(self, prefix: Prefix | str, asn: int) -> None:
        """Register that ``prefix`` belongs to ``asn``.

        Re-announcing the same prefix overwrites the previous owner,
        mirroring a routing table update.
        """
        if isinstance(prefix, str):
            prefix = Prefix(prefix)
        if asn <= 0:
            raise AddressError(f"ASN must be positive: {asn}")
        self._assignments.append(AsAssignment(prefix=prefix, asn=asn))
        bucket = self._by_length.setdefault(prefix.length, {})
        bucket[int(prefix.network)] = asn

    def lookup(self, address: IPv4Address | str) -> Optional[int]:
        """The ASN owning ``address``, or None if unrouted.

        With nested prefixes (an AS customer holding a sub-block of its
        provider), the most specific announcement wins, as in BGP.
        """
        value = int(IPv4Address(address))
        for length in sorted(self._by_length, reverse=True):
            mask = (MAX_U32 << (32 - length)) & MAX_U32 if length else 0
            asn = self._by_length[length].get(value & mask)
            if asn is not None:
                return asn
        return None

    def coverage(self) -> list[AsAssignment]:
        """All registered assignments (for reports and tests)."""
        return list(self._assignments)

    def distinct_ases(self) -> set[int]:
        """The set of ASNs with at least one announcement."""
        return {a.asn for a in self._assignments}

    def __len__(self) -> int:
        return len(self._assignments)
