"""Pipelined traceroute drivers.

:class:`PipelinedTraceroute` wraps any existing tool — Paris, classic,
tcptraceroute — and runs its traces through the event engine instead of
the stop-and-wait loop.  Both paths drive the *same*
:class:`repro.probing.HopLoopStrategy` (probe construction, response
matching, and halt rules are the wrapped tool's own), so the inferred
route (hops, halt reason, flow keys) matches what ``tracer.trace()``
would produce; only the elapsed simulated time shrinks, because up to
``window`` probes overlap.  Classic traceroute under a window is
exactly the paper's out-of-order regime: each probe rides its own
flow, so deeper hops routinely answer first and the strategy reorders
them by TTL.
"""

from __future__ import annotations

from typing import Iterable

from repro.engine.asyncsocket import AsyncProbeSocket
from repro.engine.scheduler import (
    DEFAULT_WINDOW,
    FixedTimeout,
    ProbeScheduler,
    TraceSpec,
)
from repro.errors import TracerError
from repro.net.inet import IPv4Address
from repro.tracer.base import Traceroute
from repro.tracer.probes import ProbeBuilder
from repro.tracer.result import TracerouteResult


class PipelinedTraceroute:
    """Run a wrapped tool's traces with a window of probes in flight."""

    def __init__(
        self,
        tracer: Traceroute,
        window: int = DEFAULT_WINDOW,
        timeout_policy=None,
        socket: AsyncProbeSocket | None = None,
    ) -> None:
        if window < 1:
            raise TracerError(
                f"need a positive in-flight window, not {window}")
        self.tracer = tracer
        blocking = tracer.socket
        self.socket = socket or AsyncProbeSocket(
            blocking.network, blocking.host, timeout=blocking.timeout
        )
        self.window = window
        self.timeout_policy = timeout_policy or FixedTimeout(
            self.socket.timeout
        )
        #: Halt-TTL memo shared across this driver's traces, so repeat
        #: traces to a destination stop speculating past its depth.
        self.horizon_hints: dict = {}

    @property
    def tool(self) -> str:
        return self.tracer.tool

    @property
    def options(self):
        return self.tracer.options

    def _scheduler(self) -> ProbeScheduler:
        return ProbeScheduler(
            self.socket.network,
            self.socket.host,
            window=self.window,
            timeout_policy=self.timeout_policy,
            socket=self.socket,
            horizon_hints=self.horizon_hints,
        )

    def trace(
        self,
        destination: IPv4Address | str,
        builder: ProbeBuilder | None = None,
    ) -> TracerouteResult:
        """Trace one destination; same signature as the blocking loop."""
        destination = IPv4Address(destination)
        scheduler = self._scheduler()
        factory = (lambda: builder) if builder is not None else None
        scheduler.add_lane([TraceSpec(self.tracer, destination, factory)])
        return scheduler.run()[0].result

    def trace_many(
        self,
        destinations: Iterable[IPv4Address | str],
    ) -> list[TracerouteResult]:
        """Trace several destinations concurrently, one lane each.

        Results come back in input order, while on the clock all the
        traces interleave — the multi-destination pipelining the
        campaign engine builds on.
        """
        scheduler = self._scheduler()
        for destination in destinations:
            scheduler.add_lane(
                [TraceSpec(self.tracer, IPv4Address(destination))]
            )
        return [outcome.result for outcome in scheduler.run()]
