"""Pipelined probing: sessions, windows, timeout policies, the scheduler.

One :class:`ProbeScheduler` multiplexes many *lanes* (independent
sequences of traces — the campaign's 32 workers become 32 lanes) over a
single simulated clock.  Each running trace is a :class:`TraceSession`
that keeps up to ``window`` probes in flight, accepts responses in any
arrival order, and adjudicates hops strictly in TTL order with exactly
the stop-and-wait loop's rules (star budget, destination halt,
unreachable halt).  A session therefore produces the same hops, halt
reason, and flow keys as :meth:`repro.tracer.base.Traceroute.trace`
would — only the timestamps shrink, because waiting overlaps.

Out-of-order arrivals are the normal case here, not an anomaly: with a
window of probes in flight, a TTL-3 router regularly answers before the
TTL-2 router (different return paths, different delays).  The session
parks early responses in their slots and lets adjudication catch up —
the behaviour real pipelined tools need and the paper's one-in-flight
campaign sidestepped.

Two pacing controls bound speculative probing:

- **horizon hints** — a shared ``{(destination, tool): last halt TTL}``
  memo (the campaign passes one across rounds).  Sends pause at the
  hinted depth and resume only if adjudication gets there without
  halting, so steady-state rounds send almost no probe the sequential
  loop would not have sent.
- **evidence caps** — as soon as *any* reply (in or out of order) is a
  halt kind (destination reached, unreachable), deeper sends stop; the
  final halt TTL can only be at or before that reply's TTL.

Timeout policies: :class:`FixedTimeout` reproduces the paper's flat
2-second wait and keeps results byte-comparable to the sequential path;
:class:`AdaptiveTimeout` is an RFC 6298-style RTT estimator (SRTT +
4·RTTVAR, clamped) for when throughput matters more than replaying the
paper's exact timing — an early expiry can star a hop the sequential
tool would have caught.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Iterable, Optional

from repro.engine.asyncsocket import AsyncProbeSocket
from repro.engine.events import EventKind, EventQueue
from repro.errors import TracerError
from repro.net.icmp import (
    ICMPDestinationUnreachable,
    ICMPEchoReply,
    ICMPEchoRequest,
    ICMPTimeExceeded,
)
from repro.net.inet import IPv4Address
from repro.net.packet import Packet
from repro.net.tcp import TCPHeader
from repro.sim.endhost import MeasurementHost
from repro.sim.network import Network
from repro.sim.socketapi import ProbeResponse
from repro.tracer.base import Traceroute, halt_reason_for, interpret_reply
from repro.tracer.probes import ProbeBuilder
from repro.tracer.result import Hop, TracerouteResult

#: Default in-flight window per trace session.
DEFAULT_WINDOW = 8

_ICMP_ERROR = (ICMPTimeExceeded, ICMPDestinationUnreachable)


# ----------------------------------------------------------------------
# timeout policies
# ----------------------------------------------------------------------
class FixedTimeout:
    """The paper's policy: a flat per-probe response timeout."""

    def __init__(self, seconds: float) -> None:
        if seconds <= 0:
            raise TracerError(f"timeout must be positive: {seconds}")
        self.seconds = seconds

    def timeout_for(self) -> float:
        return self.seconds

    def observe(self, rtt: float) -> None:
        """Fixed policies ignore RTT samples."""


class AdaptiveTimeout:
    """RFC 6298-style retransmission-timer estimate as a probe timeout.

    ``SRTT + 4 * RTTVAR`` clamped to ``[floor, ceiling]``; before any
    sample the ceiling applies.  Faster than the flat wait on silent
    tails, but an under-estimate stars probes the sequential tool would
    have caught — use where throughput beats exact replay.
    """

    def __init__(
        self,
        ceiling: float = 2.0,
        floor: float = 0.1,
        alpha: float = 1 / 8,
        beta: float = 1 / 4,
    ) -> None:
        if not 0 < floor <= ceiling:
            raise TracerError(
                f"need 0 < floor <= ceiling, got [{floor}, {ceiling}]"
            )
        self.ceiling = ceiling
        self.floor = floor
        self.alpha = alpha
        self.beta = beta
        self.srtt: float | None = None
        self.rttvar = 0.0

    def timeout_for(self) -> float:
        if self.srtt is None:
            return self.ceiling
        estimate = self.srtt + 4.0 * self.rttvar
        return min(self.ceiling, max(self.floor, estimate))

    def observe(self, rtt: float) -> None:
        if self.srtt is None:
            self.srtt = rtt
            self.rttvar = rtt / 2.0
            return
        self.rttvar = ((1 - self.beta) * self.rttvar
                       + self.beta * abs(self.srtt - rtt))
        self.srtt = (1 - self.alpha) * self.srtt + self.alpha * rtt


# ----------------------------------------------------------------------
# trace sessions
# ----------------------------------------------------------------------
class _Slot:
    """One sent probe awaiting adjudication."""

    __slots__ = ("probe", "flow_key", "ttl", "token", "reply", "response")

    def __init__(self, probe: Packet, flow_key: bytes, ttl: int) -> None:
        self.probe = probe
        self.flow_key = flow_key
        self.ttl = ttl
        self.token: int | None = None
        self.reply = None
        self.response: ProbeResponse | None = None


@dataclass
class TraceSpec:
    """One trace a lane should run.

    ``builder_factory`` overrides probe construction (the campaign uses
    it to pin per-trace flows deterministically); None lets the tool
    draw its own builder, exactly as ``tracer.trace(destination)``
    would.
    """

    tracer: Traceroute
    destination: IPv4Address
    builder_factory: Optional[Callable[[], ProbeBuilder]] = None


@dataclass
class TraceOutcome:
    """A finished trace with its lane coordinates."""

    lane: int
    index: int
    spec: TraceSpec
    result: TracerouteResult


class TraceSession:
    """State machine for one pipelined trace."""

    def __init__(
        self,
        tracer: Traceroute,
        destination: IPv4Address,
        builder: ProbeBuilder,
        window: int,
        started_at: float,
        horizon_hint: int | None = None,
    ) -> None:
        if window < 1:
            raise TracerError("need a positive in-flight window")
        self.tracer = tracer
        self.options = tracer.options
        self.destination = IPv4Address(destination)
        self.builder = builder
        self.window = window
        self.result = TracerouteResult(
            tool=tracer.tool,
            source=tracer.socket.source_address,
            destination=self.destination,
            started_at=started_at,
        )
        self.in_flight = 0
        self.done = False
        opts = self.options
        self._hops: dict[int, list[_Slot]] = {}
        self._next_ttl = opts.min_ttl
        self._next_index = 0
        self._adjudicated = opts.min_ttl - 1
        self._consecutive_stars = 0
        self._halt: str | None = None
        self._evidence_cap: int | None = None
        if horizon_hint is None:
            self._horizon = opts.max_ttl
        else:
            self._horizon = min(opts.max_ttl, max(opts.min_ttl, horizon_hint))

    # -- sending ---------------------------------------------------------
    def build_next(self) -> Optional[_Slot]:
        """The next probe slot in strict (TTL, probe index) order."""
        if self.done or self._halt is not None:
            return None
        ttl = self._next_ttl
        if ttl > self._horizon:
            return None
        if self._evidence_cap is not None and ttl > self._evidence_cap:
            return None
        probe = self.builder.build(ttl)
        slot = _Slot(probe, self.builder.flow_key(probe), ttl)
        self._hops.setdefault(ttl, []).append(slot)
        self._next_index += 1
        if self._next_index >= self.options.probes_per_hop:
            self._next_index = 0
            self._next_ttl += 1
        self.in_flight += 1
        return slot

    # -- resolving -------------------------------------------------------
    def resolve(self, slot: _Slot, response: ProbeResponse | None) -> None:
        """Record a response (or, with None, a timeout) for ``slot``."""
        if slot.reply is not None:
            return
        slot.response = response
        slot.reply = interpret_reply(self.builder, slot.probe, response)
        self.in_flight -= 1
        if response is not None and not slot.reply.is_star:
            halt = halt_reason_for(slot.probe, response, slot.reply)
            if halt is not None and (self._evidence_cap is None
                                     or slot.ttl < self._evidence_cap):
                self._evidence_cap = slot.ttl

    # -- adjudication ----------------------------------------------------
    def advance(self, now: float) -> bool:
        """Adjudicate complete hops in TTL order; True when just done."""
        if self.done:
            return False
        opts = self.options
        while self._halt is None:
            ttl = self._adjudicated + 1
            if ttl > opts.max_ttl:
                break
            slots = self._hops.get(ttl)
            if (slots is None or len(slots) < opts.probes_per_hop
                    or any(slot.reply is None for slot in slots)):
                break
            halt = None
            for slot in slots:
                if slot.reply.is_star:
                    self._consecutive_stars += 1
                else:
                    self._consecutive_stars = 0
                halt = halt or halt_reason_for(slot.probe, slot.response,
                                               slot.reply)
            self._adjudicated = ttl
            if halt:
                self._halt = halt
            elif self._consecutive_stars >= opts.max_consecutive_stars:
                self._halt = "stars"
        if self._halt is None and self._adjudicated >= opts.max_ttl:
            self._halt = "max-ttl"
        if self._halt is not None:
            self._finalize(now)
            return True
        if (self._adjudicated >= self._horizon
                and self._horizon < opts.max_ttl):
            # Every hinted hop resolved without a halt: probe deeper.
            self._horizon = min(opts.max_ttl, self._horizon + self.window)
        return False

    def _finalize(self, now: float) -> None:
        opts = self.options
        hops: list[Hop] = []
        flow_keys: list[bytes] = []
        for ttl in range(opts.min_ttl, self._adjudicated + 1):
            slots = self._hops[ttl]
            hops.append(Hop(ttl=ttl, replies=[s.reply for s in slots]))
            flow_keys.extend(s.flow_key for s in slots)
        self.result.hops = hops
        self.result.flow_keys = flow_keys
        self.result.halt_reason = self._halt or "max-ttl"
        self.result.finished_at = now
        self.done = True

    @property
    def halt_ttl(self) -> int:
        """The deepest adjudicated TTL (the hint for the next round)."""
        return self._adjudicated

    def outstanding_slots(self) -> list[_Slot]:
        """Slots still awaiting a response (for cancellation when done)."""
        return [slot for slots in self._hops.values() for slot in slots
                if slot.reply is None]


# ----------------------------------------------------------------------
# response demultiplexing
# ----------------------------------------------------------------------
def probe_match_keys(probe: Packet) -> list[tuple]:
    """Exact-match demux keys under which a probe expects answers.

    One key covers ICMP errors quoting the probe (source, destination,
    protocol, first eight transport octets — the RFC 792 quote); probe
    types that can also be answered directly (Echo Reply, TCP) add a
    second key.  Dict hits are *confirmed* with the builder's own
    matching logic, and misses fall back to a linear scan with it, so
    the index is purely an accelerator.
    """
    keys = [("quote", probe.src, probe.dst, int(probe.ip.protocol),
             probe.first_eight_transport_octets())]
    transport = probe.transport
    if isinstance(transport, ICMPEchoRequest):
        keys.append(("echo", probe.dst, transport.identifier,
                     transport.sequence))
    elif isinstance(transport, TCPHeader):
        keys.append(("tcp", probe.dst, transport.dst_port,
                     transport.src_port, (transport.seq + 1) & 0xFFFFFFFF))
    return keys


def response_match_keys(packet: Packet) -> list[tuple]:
    """The demux keys a received packet answers to."""
    transport = packet.transport
    if isinstance(transport, _ICMP_ERROR):
        quoted = transport.quoted_header
        return [("quote", quoted.src, quoted.dst, int(quoted.protocol),
                 transport.quoted_payload[:8])]
    if isinstance(transport, ICMPEchoReply):
        return [("echo", packet.src, transport.identifier,
                 transport.sequence)]
    if isinstance(transport, TCPHeader):
        return [("tcp", packet.src, transport.src_port, transport.dst_port,
                 transport.ack)]
    return []


# ----------------------------------------------------------------------
# lanes and the scheduler
# ----------------------------------------------------------------------
@dataclass
class _Lane:
    index: int
    specs: list[TraceSpec]
    inter_trace_delay: float = 0.0
    position: int = 0
    session: Optional[TraceSession] = None


@dataclass
class _Outstanding:
    session: TraceSession
    slot: _Slot
    lane: _Lane


class ProbeScheduler:
    """Drive lanes of pipelined traces over one simulated clock."""

    def __init__(
        self,
        network: Network,
        host: MeasurementHost,
        timeout: float | None = None,
        window: int = DEFAULT_WINDOW,
        timeout_policy=None,
        socket: AsyncProbeSocket | None = None,
        horizon_hints: dict | None = None,
    ) -> None:
        if socket is None:
            socket = AsyncProbeSocket(
                network, host,
                timeout=timeout if timeout is not None else 2.0,
            )
        self.network = network
        self.socket = socket
        self.clock = network.clock
        self.window = window
        # An explicit timeout wins over the socket's own default, also
        # when the socket was passed in.
        if timeout_policy is not None:
            self.timeout_policy = timeout_policy
        else:
            self.timeout_policy = FixedTimeout(
                timeout if timeout is not None else socket.timeout)
        self.events = EventQueue()
        self.lanes: list[_Lane] = []
        self.outcomes: list[TraceOutcome] = []
        #: (destination, tool) -> halt TTL of the previous trace; pass a
        #: shared dict to carry pacing knowledge across scheduler runs.
        self.horizon_hints = horizon_hints if horizon_hints is not None else {}
        self._outstanding: dict[int, _Outstanding] = {}
        # Demux index: match key -> tokens of outstanding probes that
        # answer to it.  A key can be shared (tcptraceroute's probes
        # differ only in IP ID), so each holds a token set and hits are
        # confirmed with the builder's own matching logic.
        self._index: dict[tuple, set[int]] = {}
        # Keys of probes no longer waiting (expired, cancelled, already
        # answered): late responses to them are recognised here instead
        # of falling through to the full matching scan.
        self._dead_keys: set[tuple] = set()

    # -- building the workload ------------------------------------------
    def add_lane(self, specs: Iterable[TraceSpec],
                 inter_trace_delay: float = 0.0) -> int:
        lane = _Lane(index=len(self.lanes), specs=list(specs),
                     inter_trace_delay=inter_trace_delay)
        self.lanes.append(lane)
        return lane.index

    # -- the event loop --------------------------------------------------
    def run(self) -> list[TraceOutcome]:
        """Run every lane to completion; outcomes in (lane, index) order."""
        for lane in self.lanes:
            self._start_next_trace(lane)
        self.socket.flush()
        while any(lane.session is not None
                  or lane.position < len(lane.specs)
                  for lane in self.lanes):
            self._drop_stale_expires()
            arrival = self.network.next_delivery_at()
            event_time = self.events.peek_time()
            if arrival is None and event_time is None:
                break
            if arrival is not None and (event_time is None
                                        or arrival <= event_time):
                self._advance_clock(arrival)
                for response in self.socket.poll(until=arrival):
                    self._on_response(response)
            else:
                event = self.events.pop()
                self._advance_clock(event.time)
                if event.kind is EventKind.EXPIRE:
                    self._on_expire(event.payload)
                else:
                    self._start_next_trace(event.payload)
            # One cohort per iteration: everything staged while handling
            # this instant's events walks the network together.
            self.socket.flush()
        # Drain responses still in flight for cancelled speculative
        # probes: left buffered, a later scheduler on this network
        # could claim them against byte-identical re-probes (the
        # campaign reuses per-trace flows across runs by design).
        self.network.deliveries(until=float("inf"))
        self.outcomes.sort(key=lambda o: (o.lane, o.index))
        return self.outcomes

    def _drop_stale_expires(self) -> None:
        """Discard deadlines of probes already answered or cancelled.

        Without this, a finished campaign's leftover deadlines would
        drag the clock out to the last speculative probe's timeout even
        though no trace is waiting on it.
        """
        while True:
            event = self.events.peek()
            if (event is None or event.kind is not EventKind.EXPIRE
                    or event.payload in self._outstanding):
                return
            self.events.pop()

    def _advance_clock(self, timestamp: float) -> None:
        if timestamp > self.clock.now:
            self.clock.advance_to(timestamp)

    # -- lane / session lifecycle ---------------------------------------
    def _start_next_trace(self, lane: _Lane) -> None:
        if lane.position >= len(lane.specs):
            lane.session = None
            return
        spec = lane.specs[lane.position]
        tracer = spec.tracer
        if spec.builder_factory is not None:
            builder = spec.builder_factory()
        else:
            builder = tracer.make_builder(IPv4Address(spec.destination))
        # Exact (destination, tool) knowledge wins; failing that, any
        # tool's depth for this destination is a decent prior — the
        # campaign traces Paris first, so the classic trace of the same
        # destination starts with its depth instead of speculating.
        hint = self.horizon_hints.get((spec.destination, tracer.tool))
        if hint is None:
            hint = self.horizon_hints.get(spec.destination)
        session = TraceSession(
            tracer=tracer,
            destination=spec.destination,
            builder=builder,
            window=self.window,
            started_at=self.clock.now,
            horizon_hint=hint,
        )
        lane.session = session
        self._pump(lane)

    def _pump(self, lane: _Lane) -> None:
        """Refill the session's window with a burst of staged probes.

        Refills wait until the window has half drained, then top it up —
        sends then arrive at the socket in window/2-sized cohorts that
        share forwarding work in :meth:`Network.submit_cohort`, instead
        of degenerating to one-probe walks per resolved response.  The
        caller (the scheduler loop) flushes the staged cohort.
        """
        session = lane.session
        if session is None or session.done:
            return
        if session.in_flight > session.window // 2:
            return
        while session.in_flight < session.window:
            slot = session.build_next()
            if slot is None:
                break
            sent = self.socket.send_nowait(
                slot.probe.build(),
                timeout=self.timeout_policy.timeout_for(),
            )
            slot.token = sent.token
            record = _Outstanding(session=session, slot=slot, lane=lane)
            self._outstanding[sent.token] = record
            for key in probe_match_keys(slot.probe):
                self._index.setdefault(key, set()).add(sent.token)
            self.events.push(sent.deadline, EventKind.EXPIRE, sent.token)

    def _after_resolution(self, lane: _Lane) -> None:
        session = lane.session
        if session is None:
            return
        if session.advance(self.clock.now):
            self._retire(lane, session)
        else:
            self._pump(lane)

    def _retire(self, lane: _Lane, session: TraceSession) -> None:
        for slot in session.outstanding_slots():
            self._forget(slot)
        spec = lane.specs[lane.position]
        self.outcomes.append(TraceOutcome(
            lane=lane.index, index=lane.position, spec=spec,
            result=session.result,
        ))
        self.horizon_hints[(spec.destination, spec.tracer.tool)] = (
            session.halt_ttl
        )
        previous = self.horizon_hints.get(spec.destination)
        if previous is None or session.halt_ttl > previous:
            self.horizon_hints[spec.destination] = session.halt_ttl
        lane.position += 1
        lane.session = None
        if lane.position < len(lane.specs):
            if lane.inter_trace_delay > 0:
                self.events.push(self.clock.now + lane.inter_trace_delay,
                                 EventKind.LANE_START, lane)
            else:
                self._start_next_trace(lane)

    def _forget(self, slot: _Slot) -> None:
        if slot.token is None:
            return
        self._outstanding.pop(slot.token, None)
        for key in probe_match_keys(slot.probe):
            tokens = self._index.get(key)
            if tokens is not None:
                tokens.discard(slot.token)
                if not tokens:
                    del self._index[key]
            self._dead_keys.add(key)

    # -- event handlers --------------------------------------------------
    def _on_expire(self, token: int) -> None:
        record = self._outstanding.pop(token, None)
        if record is None:
            return
        self._forget(record.slot)
        record.session.resolve(record.slot, None)
        self._after_resolution(record.lane)

    def _on_response(self, response: ProbeResponse) -> None:
        record = self._claim(response)
        if record is None:
            return
        self._outstanding.pop(record.slot.token, None)
        self._forget(record.slot)
        record.session.resolve(record.slot, response)
        if record.slot.reply is not None and record.slot.reply.rtt is not None:
            self.timeout_policy.observe(record.slot.reply.rtt)
        self._after_resolution(record.lane)

    def _claim(self, response: ProbeResponse) -> Optional[_Outstanding]:
        """Find the outstanding probe this response answers, if any."""
        packet = response.packet
        keys = response_match_keys(packet)
        for key in keys:
            tokens = self._index.get(key)
            if not tokens:
                continue
            # Oldest first: when several live probes answer to one key
            # (tcptraceroute's constant ports), the earliest-sent one
            # wins, as it would under stop-and-wait.
            for token in sorted(tokens):
                record = self._outstanding.get(token)
                if record is None:
                    continue
                if record.session.builder.matches(record.slot.probe, packet):
                    return record
        if any(key in self._dead_keys for key in keys):
            # A straggler for a probe that stopped waiting (expired or
            # its trace already halted) — the sequential tool would
            # have printed its star long ago.
            return None
        # Exotic responses (mangled quotes) miss the index; fall back to
        # the full per-tool matching scan so nothing real is dropped.
        for record in self._outstanding.values():
            if record.session.builder.matches(record.slot.probe, packet):
                return record
        return None
