"""Pipelined probing: the generic strategy driver and the scheduler.

One :class:`ProbeScheduler` multiplexes many *lanes* (independent
sequences of probing runs — the campaign's 32 workers become 32 lanes)
over a single simulated clock.  Each running entry is a sans-I/O
:class:`repro.probing.ProbeStrategy` wrapped in a :class:`TraceSession`
— a thin driver that owns no probing logic of its own: what to send,
how to count stars, when to halt, and what the answers mean are all the
strategy's decisions.  The scheduler only moves packets: it sends
whatever :meth:`ProbeStrategy.next_probes` emits, demultiplexes
arriving responses back to the emitting request, fires timeout events,
and collects :meth:`ProbeStrategy.result` when a strategy finishes.

Out-of-order arrivals are the normal case here, not an anomaly: with a
window of probes in flight, a TTL-3 router regularly answers before the
TTL-2 router (different return paths, different delays).  Strategies
park early answers in their slots and adjudicate in their own order —
the behaviour real pipelined tools need and the paper's one-in-flight
campaign sidestepped.  Because a :class:`repro.probing.HopLoopStrategy`
session applies exactly the stop-and-wait loop's rules (star budget,
destination halt, unreachable halt, strict TTL-order adjudication), it
produces the same hops, halt reason, and flow keys as
:meth:`repro.tracer.base.Traceroute.trace` would — only the timestamps
shrink, because waiting overlaps.

Two spec flavours describe lane entries:

- :class:`TraceSpec` — one traceroute by an existing tool; materializes
  a :class:`HopLoopStrategy` and feeds the shared horizon-hint memo
  (``{(destination, tool): last halt TTL}``) that paces repeat traces;
- :class:`StrategySpec` — any strategy at all (MDA hops, future probing
  policies), built by a factory at lane-start time.

Lanes need not share one vantage point: :meth:`ProbeScheduler.add_lane`
accepts a per-lane socket (plus a per-lane timeout policy and
horizon-hint memo), so one scheduler can multiplex traces from many
measurement hosts over the same clock — the multi-vantage fleet of
:mod:`repro.vantage`.  Responses are claimed strictly within the socket
they arrived on: a reply surfacing at one vantage can never be matched
to another vantage's probe, even when the probes' demux keys collide
(two vantages probing one destination with identical ICMP Echo
identifiers, say).

Timeout policies: :class:`FixedTimeout` reproduces the paper's flat
2-second wait and keeps results byte-comparable to the sequential path;
:class:`AdaptiveTimeout` is an RFC 6298-style RTT estimator (SRTT +
4·RTTVAR, clamped) for when throughput matters more than replaying the
paper's exact timing — an early expiry can star a hop the sequential
tool would have caught.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Iterable, Optional

from repro.engine.asyncsocket import AsyncProbeSocket
from repro.engine.events import EventKind, EventQueue
from repro.errors import TracerError
from repro.net.icmp import (
    ICMPDestinationUnreachable,
    ICMPEchoReply,
    ICMPEchoRequest,
    ICMPTimeExceeded,
)
from repro.net.inet import IPv4Address
from repro.net.packet import Packet
from repro.net.tcp import TCPHeader
from repro.obs.registry import (
    NULL_REGISTRY,
    SCOPE_PROCESS,
    active_registry,
)
from repro.probing.hoploop import HopLoopStrategy
from repro.probing.replies import quoted_identification
from repro.probing.strategy import ProbeRequest, ProbeStrategy
from repro.sim.endhost import MeasurementHost
from repro.sim.network import Network
from repro.sim.socketapi import ProbeResponse
from repro.tracer.base import Traceroute
from repro.tracer.probes import ProbeBuilder

#: Default in-flight window per trace session.
DEFAULT_WINDOW = 8

_ICMP_ERROR = (ICMPTimeExceeded, ICMPDestinationUnreachable)


# ----------------------------------------------------------------------
# timeout policies
# ----------------------------------------------------------------------
class FixedTimeout:
    """The paper's policy: a flat per-probe response timeout."""

    def __init__(self, seconds: float) -> None:
        if seconds <= 0:
            raise TracerError(f"timeout must be positive: {seconds}")
        self.seconds = seconds

    def timeout_for(self) -> float:
        return self.seconds

    def observe(self, rtt: float) -> None:
        """Fixed policies ignore RTT samples."""


class AdaptiveTimeout:
    """RFC 6298-style retransmission-timer estimate as a probe timeout.

    ``SRTT + 4 * RTTVAR`` clamped to ``[floor, ceiling]``; before any
    sample the ceiling applies.  Faster than the flat wait on silent
    tails, but an under-estimate stars probes the sequential tool would
    have caught — use where throughput beats exact replay.
    """

    def __init__(
        self,
        ceiling: float = 2.0,
        floor: float = 0.1,
        alpha: float = 1 / 8,
        beta: float = 1 / 4,
    ) -> None:
        if not 0 < floor <= ceiling:
            raise TracerError(
                f"need 0 < floor <= ceiling, got [{floor}, {ceiling}]"
            )
        self.ceiling = ceiling
        self.floor = floor
        self.alpha = alpha
        self.beta = beta
        self.srtt: float | None = None
        self.rttvar = 0.0

    def timeout_for(self) -> float:
        if self.srtt is None:
            return self.ceiling
        estimate = self.srtt + 4.0 * self.rttvar
        return min(self.ceiling, max(self.floor, estimate))

    def observe(self, rtt: float) -> None:
        if self.srtt is None:
            self.srtt = rtt
            self.rttvar = rtt / 2.0
            return
        self.rttvar = ((1 - self.beta) * self.rttvar
                       + self.beta * abs(self.srtt - rtt))
        self.srtt = (1 - self.alpha) * self.srtt + self.alpha * rtt


# ----------------------------------------------------------------------
# lane entry specs
# ----------------------------------------------------------------------
@dataclass
class TraceSpec:
    """One trace a lane should run.

    ``builder_factory`` overrides probe construction (the campaign uses
    it to pin per-trace flows deterministically); None lets the tool
    draw its own builder, exactly as ``tracer.trace(destination)``
    would.
    """

    tracer: Traceroute
    destination: IPv4Address
    builder_factory: Optional[Callable[[], ProbeBuilder]] = None
    #: Opaque caller bookkeeping carried through to the outcome (the
    #: fleet campaign stores (vantage, round) here).
    meta: object = None
    #: Earliest simulated instant this trace may start.  A lane reaching
    #: a spec whose ``not_before`` lies ahead parks on a LANE_START
    #: event instead of starting immediately — the monitor service's
    #: per-target schedules, with no cross-lane barrier: the deferral
    #: depends only on the lane's own clock position and the spec's
    #: constant, so sharded executions replay it identically.
    not_before: float = 0.0

    def make_strategy(self, started_at: float, window: int,
                      hints: dict) -> HopLoopStrategy:
        """A hop-loop strategy for this trace, paced by ``hints``.

        Exact (destination, tool) knowledge wins; failing that, any
        tool's depth for this destination is a decent prior — the
        campaign traces Paris first, so the classic trace of the same
        destination starts with its depth instead of speculating.
        """
        tracer = self.tracer
        if self.builder_factory is not None:
            builder = self.builder_factory()
        else:
            builder = tracer.make_builder(IPv4Address(self.destination))
        hint = hints.get((self.destination, tracer.tool))
        if hint is None:
            hint = hints.get(self.destination)
        return HopLoopStrategy(
            builder=builder,
            options=tracer.options,
            tool=tracer.tool,
            source=tracer.socket.source_address,
            destination=self.destination,
            window=window,
            started_at=started_at,
            horizon_hint=hint,
        )

    def record_hints(self, strategy: HopLoopStrategy, hints: dict) -> None:
        hints[(self.destination, self.tracer.tool)] = strategy.halt_ttl
        previous = hints.get(self.destination)
        if previous is None or strategy.halt_ttl > previous:
            hints[self.destination] = strategy.halt_ttl


@dataclass
class StrategySpec:
    """An arbitrary strategy a lane should run.

    ``factory`` receives the lane-start instant and returns the
    strategy; ``meta`` is opaque caller bookkeeping carried through to
    the :class:`TraceOutcome` spec (the campaign stores the destination
    there).
    """

    factory: Callable[[float], ProbeStrategy]
    label: str = "strategy"
    meta: object = None
    #: Earliest simulated start instant (see :class:`TraceSpec`).
    not_before: float = 0.0

    def make_strategy(self, started_at: float, window: int,
                      hints: dict) -> ProbeStrategy:
        return self.factory(started_at)

    def record_hints(self, strategy: ProbeStrategy, hints: dict) -> None:
        """Generic strategies feed no horizon memo."""


@dataclass
class TraceOutcome:
    """A finished lane entry with its lane coordinates.

    ``result`` is whatever the spec's strategy produced — a
    :class:`repro.tracer.result.TracerouteResult` for :class:`TraceSpec`
    entries, the strategy's own product for :class:`StrategySpec`.
    """

    lane: int
    index: int
    spec: object
    result: object


class TraceSession:
    """Generic driver state for one running strategy.

    All probing decisions live in the strategy; the session only
    remembers which socket tokens are outstanding so the scheduler can
    cancel them when the strategy finishes early.
    """

    __slots__ = ("strategy", "tokens")

    def __init__(self, strategy: ProbeStrategy) -> None:
        self.strategy = strategy
        self.tokens: set[int] = set()

    @property
    def done(self) -> bool:
        return self.strategy.finished


# ----------------------------------------------------------------------
# response demultiplexing
# ----------------------------------------------------------------------
def probe_match_keys(probe: Packet) -> list[tuple]:
    """Exact-match demux keys under which a probe expects answers.

    One key covers ICMP errors quoting the probe (source, destination,
    protocol, first eight transport octets — the RFC 792 quote); probe
    types that can also be answered directly (Echo Reply, TCP) add a
    second key.  Dict hits are *confirmed* with the builder's own
    matching logic, and misses fall back to a linear scan with it, so
    the index is purely an accelerator.
    """
    keys = [("quote", probe.src, probe.dst, int(probe.ip.protocol),
             probe.first_eight_transport_octets())]
    transport = probe.transport
    if isinstance(transport, ICMPEchoRequest):
        keys.append(("echo", probe.dst, transport.identifier,
                     transport.sequence))
    elif isinstance(transport, TCPHeader):
        keys.append(("tcp", probe.dst, transport.dst_port,
                     transport.src_port, (transport.seq + 1) & 0xFFFFFFFF))
    return keys


def response_match_keys(packet: Packet) -> list[tuple]:
    """The demux keys a received packet answers to."""
    transport = packet.transport
    if isinstance(transport, _ICMP_ERROR):
        quoted = transport.quoted_header
        return [("quote", quoted.src, quoted.dst, int(quoted.protocol),
                 transport.quoted_payload[:8])]
    if isinstance(transport, ICMPEchoReply):
        return [("echo", packet.src, transport.identifier,
                 transport.sequence)]
    if isinstance(transport, TCPHeader):
        return [("tcp", packet.src, transport.src_port, transport.dst_port,
                 transport.ack)]
    return []


# ----------------------------------------------------------------------
# lanes and the scheduler
# ----------------------------------------------------------------------
@dataclass
class _Lane:
    index: int
    specs: list
    inter_trace_delay: float = 0.0
    position: int = 0
    session: Optional[TraceSession] = None
    #: The socket this lane probes through (a vantage point); defaults
    #: to the scheduler's own socket.
    socket: Optional[AsyncProbeSocket] = None
    #: Per-lane timeout policy; defaults to the scheduler's.
    timeout_policy: object = None
    #: Per-lane horizon-hint memo; defaults to the scheduler's shared
    #: dict.  Fleet lanes pass a per-vantage dict so one vantage's halt
    #: depths never pace another vantage's traces.
    hints: Optional[dict] = None
    #: Cached :class:`_SocketInstruments` bundle for this lane's socket
    #: (filled on first pump when metrics are on — per-event dict
    #: probes are measurable at campaign probe rates).
    mx: object = None


@dataclass
class _Outstanding:
    session: TraceSession
    request: ProbeRequest
    lane: _Lane
    keys: list = field(default_factory=list)
    sent_at: float = 0.0


#: Claim freshness slack, seconds: float error on ``arrival - rtt`` is
#: ~1e-11 at campaign clock scales, event spacing is >= link latency.
_CLAIM_TOLERANCE = 1e-6


class _SocketInstruments:
    """One vantage point's event accumulators (claims, timeouts...).

    The event loop bumps plain ints and small value->count dicts —
    never a metric object — and :meth:`collect` (registered as a
    registry collector) publishes the running totals into children
    bound once per socket when a snapshot is taken.  At campaign probe
    rates this accumulate-then-flush split is the difference between
    percent-level and noise-level overhead.

    Determinism across shard compositions holds because every
    accumulator is a pure function of the socket's own timeline: the
    histogram dicts iterate in first-occurrence order of each value
    within that timeline, so even the flushed float sums are
    byte-identical.
    """

    __slots__ = ("claims", "timeouts", "stale", "duplicate", "unmatched",
                 "flush", "occupancy", "timeout_s", "answered",
                 "_children", "_published")

    _COUNTERS = ("claims", "timeouts", "stale", "duplicate", "unmatched")
    _HISTOGRAMS = ("flush", "occupancy", "timeout_s")

    def __init__(self, registry, client: str) -> None:
        self.claims = 0
        self.timeouts = 0
        self.stale = 0
        self.duplicate = 0
        self.unmatched = 0
        self.flush: dict[int, int] = {}
        self.occupancy: dict[int, int] = {}
        self.timeout_s: dict[float, int] = {}
        #: Demux key -> sent_at of the probe whose reply was claimed
        #: under that key; lets a later straggler with the same implied
        #: send instant be classified as a duplicate rather than a
        #: stale reply.  Socket-local, so echo-key collisions across
        #: vantages that start lanes on one clock cannot cross-talk.
        self.answered: dict[tuple, float] = {}
        self._children = {
            "claims": registry.counter(
                "repro_scheduler_claims_total",
                "Responses matched to an outstanding probe, per client.",
                ("client",)).labels(client),
            "timeouts": registry.counter(
                "repro_scheduler_timeouts_total",
                "Probes that expired unanswered, per client.",
                ("client",)).labels(client),
            "stale": registry.counter(
                "repro_scheduler_replies_stale_total",
                "Late replies to probes that stopped waiting, per client.",
                ("client",)).labels(client),
            "duplicate": registry.counter(
                "repro_scheduler_replies_duplicate_total",
                "Extra copies of already-claimed replies, per client.",
                ("client",)).labels(client),
            "unmatched": registry.counter(
                "repro_scheduler_replies_unmatched_total",
                "Replies matching no probe, live or dead, per client.",
                ("client",)).labels(client),
            "flush": registry.histogram(
                "repro_scheduler_flush_batch_size",
                "Staged probes per socket at each cohort flush.",
                ("client",),
                buckets=(1, 2, 4, 8, 16, 32, 64, 128)).labels(client),
            "occupancy": registry.histogram(
                "repro_scheduler_lane_occupancy",
                "In-flight probes in a lane's window after each pump.",
                ("client",),
                buckets=(0, 1, 2, 4, 8, 16, 32)).labels(client),
            "timeout_s": registry.histogram(
                "repro_scheduler_probe_timeout_seconds",
                "Timeout the lane policy assigned each probe at send time.",
                ("client",),
                buckets=(0.1, 0.25, 0.5, 1.0, 2.0, 4.0)).labels(client),
        }
        self._published: dict = {name: 0 for name in self._COUNTERS}
        for name in self._HISTOGRAMS:
            self._published[name] = {}
        registry.add_collector(self.collect)

    def collect(self) -> None:
        """Publish accumulated deltas into the bound children.

        Delta-based (not absolute) so repeated snapshots stay correct,
        and so several bundles for one socket — campaigns build a fresh
        scheduler per round — publish additively into shared children.
        """
        children = self._children
        published = self._published
        for name in self._COUNTERS:
            total = getattr(self, name)
            delta = total - published[name]
            if delta:
                children[name].inc(delta)
                published[name] = total
        for name in self._HISTOGRAMS:
            done = published[name]
            child = children[name]
            for value, n in getattr(self, name).items():
                delta = n - done.get(value, 0)
                if delta:
                    child.observe(value, delta)
                    done[value] = n


class ProbeScheduler:
    """Drive lanes of strategies over one simulated clock."""

    def __init__(
        self,
        network: Network,
        host: MeasurementHost,
        timeout: float | None = None,
        window: int = DEFAULT_WINDOW,
        timeout_policy=None,
        socket: AsyncProbeSocket | None = None,
        horizon_hints: dict | None = None,
    ) -> None:
        if socket is None:
            socket = AsyncProbeSocket(
                network, host,
                timeout=timeout if timeout is not None else 2.0,
            )
        self.network = network
        self.socket = socket
        self.clock = network.clock
        self.window = window
        # An explicit timeout wins over the socket's own default, also
        # when the socket was passed in.
        if timeout_policy is not None:
            self.timeout_policy = timeout_policy
        else:
            self.timeout_policy = FixedTimeout(
                timeout if timeout is not None else socket.timeout)
        self.events = EventQueue()
        self.lanes: list[_Lane] = []
        self.outcomes: list[TraceOutcome] = []
        # Every socket lanes probe through, in registration order (the
        # default socket first).  The run loop flushes and polls them
        # all; per-arrival-instant response order follows this order,
        # which is deterministic because lanes register deterministically.
        self._sockets: list[AsyncProbeSocket] = [self.socket]
        #: (destination, tool) -> halt TTL of the previous trace; pass a
        #: shared dict to carry pacing knowledge across scheduler runs.
        self.horizon_hints = horizon_hints if horizon_hints is not None else {}
        # Outstanding probes are keyed by a scheduler-assigned serial,
        # NOT the socket's own SentProbe token: with per-lane sockets
        # (the vantage fleet) every socket numbers its probes from
        # zero, and socket tokens collide across vantages.
        self._outstanding: dict[int, _Outstanding] = {}
        self._next_probe_id = 0
        # Demux index: match key -> tokens of outstanding probes that
        # answer to it.  A key can be shared (tcptraceroute's probes
        # differ only in IP ID), so each holds a token set and hits are
        # confirmed with the builder's own matching logic.
        self._index: dict[tuple, set[int]] = {}
        # Keys of probes no longer waiting (expired, cancelled, already
        # answered): late responses to them are recognised here instead
        # of falling through to the full matching scan.
        self._dead_keys: set[tuple] = set()
        # Observability: families are created once here; per-socket
        # children bind lazily in _instruments().  With no registry the
        # children are no-op singletons and _obs gates the bookkeeping
        # (answered-send map, straggler classification) that a no-op
        # call would not absorb.
        registry = active_registry(network)
        self._obs = registry is not None
        self._metrics = registry if registry is not None else NULL_REGISTRY
        self._tracer = getattr(network, "tracer", None)
        self._instruments_by_socket: dict[int, _SocketInstruments] = {}
        self._mf_lanes = self._metrics.gauge(
            "repro_scheduler_lanes",
            "Lanes registered per probing client.", ("client",))
        self._mc_cohort = self._metrics.histogram(
            "repro_scheduler_cohort_size",
            "Total probes per cross-vantage cohort flush (advisory: "
            "depends on cohort composition).",
            (), scope=SCOPE_PROCESS,
            buckets=(1, 2, 4, 8, 16, 32, 64, 128, 256)).labels()
        # Cohort sizes accumulate here (value -> count) and flush into
        # _mc_cohort at snapshot time, same delta discipline as the
        # per-socket bundles.
        self._cohort_acc: dict[int, int] = {}
        self._cohort_pub: dict[int, int] = {}
        if self._obs:
            registry.add_collector(self._collect_cohort)

    # -- building the workload ------------------------------------------
    def add_lane(self, specs: Iterable,
                 inter_trace_delay: float = 0.0,
                 socket: AsyncProbeSocket | None = None,
                 timeout_policy=None,
                 horizon_hints: dict | None = None) -> int:
        """Queue a lane of :class:`TraceSpec` / :class:`StrategySpec`.

        ``socket`` probes the lane through another vantage point (the
        scheduler's own socket when None); ``timeout_policy`` and
        ``horizon_hints`` likewise override the scheduler-wide defaults
        for this lane only.
        """
        if socket is None:
            socket = self.socket
        elif socket not in self._sockets:
            self._sockets.append(socket)
        lane = _Lane(index=len(self.lanes), specs=list(specs),
                     inter_trace_delay=inter_trace_delay,
                     socket=socket,
                     timeout_policy=(timeout_policy if timeout_policy
                                     is not None else self.timeout_policy),
                     hints=(horizon_hints if horizon_hints is not None
                            else self.horizon_hints))
        self.lanes.append(lane)
        return lane.index

    def _instruments(self, socket: AsyncProbeSocket) -> _SocketInstruments:
        """The socket's accumulator bundle (created on first use)."""
        bundle = self._instruments_by_socket.get(id(socket))
        if bundle is None:
            bundle = _SocketInstruments(self._metrics,
                                        str(socket.source_address))
            self._instruments_by_socket[id(socket)] = bundle
        return bundle

    def _collect_cohort(self) -> None:
        """Publish the cohort-size accumulator delta at snapshot time."""
        published = self._cohort_pub
        for value, n in self._cohort_acc.items():
            delta = n - published.get(value, 0)
            if delta:
                self._mc_cohort.observe(value, delta)
                published[value] = n

    # -- the event loop --------------------------------------------------
    def run(self) -> list[TraceOutcome]:
        """Run every lane to completion; outcomes in (lane, index) order."""
        if self._obs:
            lane_counts: dict[int, int] = {}
            addresses: dict[int, str] = {}
            for lane in self.lanes:
                sid = id(lane.socket)
                lane_counts[sid] = lane_counts.get(sid, 0) + 1
                addresses[sid] = str(lane.socket.source_address)
            for sid, count in lane_counts.items():
                self._mf_lanes.labels(addresses[sid]).set(count)
        for lane in self.lanes:
            self._start_next_trace(lane)
        self._flush_sockets()
        while any(lane.session is not None
                  or lane.position < len(lane.specs)
                  for lane in self.lanes):
            self._drop_stale_expires()
            arrival = self.network.next_delivery_at()
            event_time = self.events.peek_time()
            if arrival is None and event_time is None:
                break
            if arrival is not None and (event_time is None
                                        or arrival <= event_time):
                self._advance_clock(arrival)
                for sock in self._sockets:
                    for response in sock.poll(until=arrival):
                        self._on_response(response, sock)
            else:
                event = self.events.pop()
                self._advance_clock(event.time)
                if event.kind is EventKind.EXPIRE:
                    self._on_expire(event.payload)
                else:
                    self._start_next_trace(event.payload)
            # One cohort per iteration: everything staged while handling
            # this instant's events walks the network together.
            self._flush_sockets()
        # Drain responses still in flight for cancelled speculative
        # probes: left buffered, a later scheduler on this network
        # could claim them against byte-identical re-probes (the
        # campaign reuses per-trace flows across runs by design).
        # Draining *through the sockets* keeps their received counters
        # execution-mode independent: a straggler addressed to a
        # vantage is counted whether or not some other lane's activity
        # would have polled it in before the run ended.  With metrics
        # on the drained stragglers also pass through _on_response so
        # their stale/duplicate classification is identical whether a
        # sibling lane's activity polled them in-loop or not (every
        # session has retired by now, so no claim can succeed).
        for sock in self._sockets:
            responses = sock.poll(until=float("inf"))
            if self._obs:
                for response in responses:
                    self._on_response(response, sock)
        self.network.deliveries(until=float("inf"))
        self.outcomes.sort(key=lambda o: (o.lane, o.index))
        return self.outcomes

    def _flush_sockets(self) -> None:
        """Walk every socket's staged probes as this instant's cohort.

        All vantages' probes go down in one
        :meth:`Network.submit_cohorts` call, so the transit plane
        shares route resolutions and egress fan-outs across the whole
        fleet's traffic — the walker's round-canonical scheduling is
        what keeps each vantage's timeline independent of who else is
        in the cohort (the sharding guarantee).
        """
        batches = []
        for sock in self._sockets:
            staged = sock.take_staged()
            if staged:
                batches.append((sock.host, staged))
                if self._obs:
                    # Per-socket staged size is a pure function of that
                    # vantage's own timeline (one event per iteration,
                    # arrivals processed per socket, then one flush) —
                    # deterministic across shard compositions.
                    acc = self._instruments(sock).flush
                    n = len(staged)
                    acc[n] = acc.get(n, 0) + 1
        if not batches:
            return
        if self._obs:
            acc = self._cohort_acc
            n = sum(len(p) for __, p in batches)
            acc[n] = acc.get(n, 0) + 1
        result = self.network.submit_cohorts(batches)
        if self._tracer is not None:
            self._annotate_drops(result)

    def _annotate_drops(self, result) -> None:
        """Attach walk drop records to the spans of the probes they hit.

        Drops carry packets, not probe ids: a dropped probe matches its
        own registered demux keys directly, and a dropped *response*
        (loss burst, link loss) matches through the keys it would have
        answered to.
        """
        tracer = self._tracer
        now = self.clock.now
        for drop in result.drops:
            packet = drop.packet
            for key in (*response_match_keys(packet),
                        *probe_match_keys(packet)):
                if tracer.annotate_key(key, kind="drop",
                                       at=now + drop.elapsed,
                                       node=drop.node.name,
                                       reason=drop.reason):
                    break

    def _drop_stale_expires(self) -> None:
        """Discard deadlines of probes already answered or cancelled.

        Without this, a finished campaign's leftover deadlines would
        drag the clock out to the last speculative probe's timeout even
        though no trace is waiting on it.
        """
        while True:
            event = self.events.peek()
            if (event is None or event.kind is not EventKind.EXPIRE
                    or event.payload in self._outstanding):
                return
            self.events.pop()

    def _advance_clock(self, timestamp: float) -> None:
        if timestamp > self.clock.now:
            self.clock.advance_to(timestamp)

    # -- lane / session lifecycle ---------------------------------------
    def _start_next_trace(self, lane: _Lane) -> None:
        if lane.position >= len(lane.specs):
            lane.session = None
            return
        spec = lane.specs[lane.position]
        not_before = getattr(spec, "not_before", 0.0)
        if not_before > self.clock.now:
            # The spec's schedule lies ahead: park the lane on its own
            # wake-up event.  Deferral is a pure function of the lane's
            # clock position and the spec constant, never of other
            # lanes' progress — the property sharding relies on.
            lane.session = None
            self.events.push(not_before, EventKind.LANE_START, lane)
            return
        strategy = spec.make_strategy(self.clock.now, self.window,
                                      lane.hints)
        session = TraceSession(strategy)
        lane.session = session
        if session.done:
            # A strategy with nothing to ask (e.g. already run to
            # completion elsewhere) still yields its outcome.
            self._retire(lane, session)
            return
        self._pump(lane)

    def _pump(self, lane: _Lane) -> None:
        """Send whatever the lane's strategy wants in flight now."""
        session = lane.session
        if session is None or session.done:
            return
        obs = self._obs
        mx = None
        if obs:
            mx = lane.mx
            if mx is None:
                mx = lane.mx = self._instruments(lane.socket)
        tracer = self._tracer
        for request in session.strategy.next_probes():
            if request.timeout is not None:
                timeout = request.timeout
            else:
                timeout = lane.timeout_policy.timeout_for()
            sent = lane.socket.send_nowait(request.probe.build(),
                                           timeout=timeout,
                                           packet=request.probe)
            probe_id = self._next_probe_id
            self._next_probe_id += 1
            keys = probe_match_keys(request.probe)
            record = _Outstanding(session=session, request=request,
                                  lane=lane, keys=keys,
                                  sent_at=sent.sent_at)
            self._outstanding[probe_id] = record
            session.tokens.add(probe_id)
            for key in keys:
                self._index.setdefault(key, set()).add(probe_id)
            self.events.push(sent.deadline, EventKind.EXPIRE, probe_id)
            if obs:
                acc = mx.timeout_s
                acc[timeout] = acc.get(timeout, 0) + 1
            if tracer is not None:
                tracer.begin(probe_id,
                             client=lane.socket.source_address,
                             destination=request.probe.dst,
                             ttl=request.probe.ip.ttl,
                             sent_at=sent.sent_at,
                             deadline=sent.deadline,
                             keys=keys)
        if obs:
            acc = mx.occupancy
            n = len(session.tokens)
            acc[n] = acc.get(n, 0) + 1
        if session.done:
            # The strategy finished while emitting (no probe needed).
            self._retire(lane, session)
        elif not session.tokens:
            # Protocol violation: not finished, nothing in flight, and
            # nothing to send — no event will ever wake this lane.
            raise TracerError(
                "strategy stalled: not finished, yet no probe in flight")

    def _after_resolution(self, lane: _Lane) -> None:
        session = lane.session
        if session is None:
            return
        if session.done:
            self._retire(lane, session)
        else:
            self._pump(lane)

    def _retire(self, lane: _Lane, session: TraceSession) -> None:
        # Cancel probes the strategy no longer waits for (speculative
        # sends past its halt): their responses, if any, are stragglers.
        for token in list(session.tokens):
            self._forget(token)
        spec = lane.specs[lane.position]
        self.outcomes.append(TraceOutcome(
            lane=lane.index, index=lane.position, spec=spec,
            result=session.strategy.result(),
        ))
        spec.record_hints(session.strategy, lane.hints)
        lane.position += 1
        lane.session = None
        if lane.position < len(lane.specs):
            if lane.inter_trace_delay > 0:
                self.events.push(self.clock.now + lane.inter_trace_delay,
                                 EventKind.LANE_START, lane)
            else:
                self._start_next_trace(lane)

    def _forget(self, token: int) -> None:
        record = self._outstanding.pop(token, None)
        if record is None:
            return
        if self._tracer is not None:
            # Claim and timeout paths close their span first; whatever
            # is still open here is a cancelled speculative probe.
            self._tracer.close(token, "cancelled", self.clock.now)
        record.session.tokens.discard(token)
        for key in record.keys:
            tokens = self._index.get(key)
            if tokens is not None:
                tokens.discard(token)
                if not tokens:
                    del self._index[key]
            self._dead_keys.add(key)

    # -- event handlers --------------------------------------------------
    def _on_expire(self, token: int) -> None:
        record = self._outstanding.get(token)
        if record is None:
            return
        if self._obs:
            mx = record.lane.mx
            if mx is None:
                mx = record.lane.mx = self._instruments(record.lane.socket)
            mx.timeouts += 1
        if self._tracer is not None:
            self._tracer.close(token, "timeout", self.clock.now)
        self._forget(token)
        record.session.strategy.on_timeout(record.request.token,
                                           self.clock.now)
        self._after_resolution(record.lane)

    def _on_response(self, response: ProbeResponse,
                     socket: AsyncProbeSocket | None = None) -> None:
        sock = socket if socket is not None else self.socket
        token, record = self._claim(response, sock)
        if record is None:
            if self._obs:
                self._classify_unclaimed(response, sock)
            return
        if self._obs:
            # The claim fence guarantees record.lane.socket is sock.
            mx = record.lane.mx
            if mx is None:
                mx = record.lane.mx = self._instruments(sock)
            mx.claims += 1
            answered = mx.answered
            for key in record.keys:
                answered[key] = record.sent_at
        if self._tracer is not None:
            self._tracer.close(token, "claimed", self.clock.now,
                               rtt=response.rtt,
                               responder=str(response.packet.src))
        self._forget(token)
        record.session.strategy.on_reply(record.request.token, response,
                                         self.clock.now)
        record.lane.timeout_policy.observe(response.rtt)
        self._after_resolution(record.lane)

    def _classify_unclaimed(self, response: ProbeResponse,
                            socket: AsyncProbeSocket) -> None:
        """Count an unclaimed reply as duplicate, stale, or unmatched.

        A reply to dead keys whose implied send instant equals a
        previously *claimed* probe's send is an extra copy of an answer
        the strategy already consumed (network duplication); any other
        dead-key reply is a stale answer to a probe that stopped
        waiting.  Replies matching no key at all are unmatched.  All
        three derive from the client's own timeline, so the counts are
        shard-composition independent.
        """
        mx = self._instruments(socket)
        keys = response_match_keys(response.packet)
        if any(key in self._dead_keys for key in keys):
            implied_send = response.received_at - response.rtt
            answered = mx.answered
            for key in keys:
                sent_at = answered.get(key)
                if (sent_at is not None
                        and abs(sent_at - implied_send)
                        <= _CLAIM_TOLERANCE):
                    mx.duplicate += 1
                    return
            mx.stale += 1
        else:
            mx.unmatched += 1

    def _is_fresh(self, response: ProbeResponse,
                  record: _Outstanding) -> bool:
        """True when ``response`` answers a probe sent at the record's
        own send instant.

        A response's walk time is measured from *its* probe's send, so
        ``received_at - rtt`` recovers that instant.  The check rejects
        a stale reply to an expired probe claiming a byte-identical
        re-probe — MDA re-uses a timed-out hop's flow index at deeper
        hops, and the campaign re-probes identical flows across rounds.
        """
        implied_send = response.received_at - response.rtt
        return abs(implied_send - record.sent_at) <= _CLAIM_TOLERANCE

    def _claim(
        self, response: ProbeResponse,
        socket: AsyncProbeSocket,
    ) -> tuple[Optional[int], Optional[_Outstanding]]:
        """Find the outstanding probe this response answers, if any.

        Only probes sent through ``socket`` — the vantage point the
        response actually arrived at — are candidates.  Two vantages'
        probes can share a demux key (identical ICMP Echo identifiers
        toward one destination) and even satisfy each other's builder
        matching; the socket fence is what keeps a reply, stale or not,
        from ever being claimed by the wrong vantage's trace.

        ICMP quotes additionally carry the offending datagram's IP
        Identification; a candidate whose probe disagrees with the
        quoted value is never the sender, so it is skipped outright.
        This is what lets hop-parallel MDA keep byte-identical flows
        outstanding at several TTLs: each probe's unique ip-id tag
        survives in the quote even though the TTL does not.
        """
        packet = response.packet
        keys = response_match_keys(packet)
        quoted_id = quoted_identification(packet)
        for key in keys:
            tokens = self._index.get(key)
            if not tokens:
                continue
            # Oldest first: when several live probes answer to one key
            # (tcptraceroute's constant ports), the earliest-sent one
            # wins, as it would under stop-and-wait.
            for token in sorted(tokens):
                record = self._outstanding.get(token)
                if (record is None or record.lane.socket is not socket
                        or not self._is_fresh(response, record)):
                    continue
                if (quoted_id is not None and quoted_id
                        != record.request.probe.ip.identification):
                    continue
                if record.request.builder.matches(record.request.probe,
                                                  packet):
                    return token, record
        if any(key in self._dead_keys for key in keys):
            # A straggler for a probe that stopped waiting (expired or
            # its trace already halted) — the sequential tool would
            # have printed its star long ago.
            return None, None
        # Exotic responses (mangled quotes) miss the index; fall back to
        # the full per-tool matching scan so nothing real is dropped.
        for token, record in self._outstanding.items():
            if (record.lane.socket is socket
                    and self._is_fresh(response, record)
                    and (quoted_id is None or quoted_id
                         == record.request.probe.ip.identification)
                    and record.request.builder.matches(record.request.probe,
                                                       packet)):
                return token, record
        return None, None
