"""Pipelined probing: the generic strategy driver and the scheduler.

One :class:`ProbeScheduler` multiplexes many *lanes* (independent
sequences of probing runs — the campaign's 32 workers become 32 lanes)
over a single simulated clock.  Each running entry is a sans-I/O
:class:`repro.probing.ProbeStrategy` wrapped in a :class:`TraceSession`
— a thin driver that owns no probing logic of its own: what to send,
how to count stars, when to halt, and what the answers mean are all the
strategy's decisions.  The scheduler only moves packets: it sends
whatever :meth:`ProbeStrategy.next_probes` emits, demultiplexes
arriving responses back to the emitting request, fires timeout events,
and collects :meth:`ProbeStrategy.result` when a strategy finishes.

Out-of-order arrivals are the normal case here, not an anomaly: with a
window of probes in flight, a TTL-3 router regularly answers before the
TTL-2 router (different return paths, different delays).  Strategies
park early answers in their slots and adjudicate in their own order —
the behaviour real pipelined tools need and the paper's one-in-flight
campaign sidestepped.  Because a :class:`repro.probing.HopLoopStrategy`
session applies exactly the stop-and-wait loop's rules (star budget,
destination halt, unreachable halt, strict TTL-order adjudication), it
produces the same hops, halt reason, and flow keys as
:meth:`repro.tracer.base.Traceroute.trace` would — only the timestamps
shrink, because waiting overlaps.

Two spec flavours describe lane entries:

- :class:`TraceSpec` — one traceroute by an existing tool; materializes
  a :class:`HopLoopStrategy` and feeds the shared horizon-hint memo
  (``{(destination, tool): last halt TTL}``) that paces repeat traces;
- :class:`StrategySpec` — any strategy at all (MDA hops, future probing
  policies), built by a factory at lane-start time.

Lanes need not share one vantage point: :meth:`ProbeScheduler.add_lane`
accepts a per-lane socket (plus a per-lane timeout policy and
horizon-hint memo), so one scheduler can multiplex traces from many
measurement hosts over the same clock — the multi-vantage fleet of
:mod:`repro.vantage`.  Responses are claimed strictly within the socket
they arrived on: a reply surfacing at one vantage can never be matched
to another vantage's probe, even when the probes' demux keys collide
(two vantages probing one destination with identical ICMP Echo
identifiers, say).

Timeout policies: :class:`FixedTimeout` reproduces the paper's flat
2-second wait and keeps results byte-comparable to the sequential path;
:class:`AdaptiveTimeout` is an RFC 6298-style RTT estimator (SRTT +
4·RTTVAR, clamped) for when throughput matters more than replaying the
paper's exact timing — an early expiry can star a hop the sequential
tool would have caught.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Iterable, Optional

from repro.engine.asyncsocket import AsyncProbeSocket
from repro.engine.events import EventKind, EventQueue
from repro.errors import TracerError
from repro.net.icmp import (
    ICMPDestinationUnreachable,
    ICMPEchoReply,
    ICMPEchoRequest,
    ICMPTimeExceeded,
)
from repro.net.inet import IPv4Address
from repro.net.packet import Packet
from repro.net.tcp import TCPHeader
from repro.probing.hoploop import HopLoopStrategy
from repro.probing.strategy import ProbeRequest, ProbeStrategy
from repro.sim.endhost import MeasurementHost
from repro.sim.network import Network
from repro.sim.socketapi import ProbeResponse
from repro.tracer.base import Traceroute
from repro.tracer.probes import ProbeBuilder

#: Default in-flight window per trace session.
DEFAULT_WINDOW = 8

_ICMP_ERROR = (ICMPTimeExceeded, ICMPDestinationUnreachable)


# ----------------------------------------------------------------------
# timeout policies
# ----------------------------------------------------------------------
class FixedTimeout:
    """The paper's policy: a flat per-probe response timeout."""

    def __init__(self, seconds: float) -> None:
        if seconds <= 0:
            raise TracerError(f"timeout must be positive: {seconds}")
        self.seconds = seconds

    def timeout_for(self) -> float:
        return self.seconds

    def observe(self, rtt: float) -> None:
        """Fixed policies ignore RTT samples."""


class AdaptiveTimeout:
    """RFC 6298-style retransmission-timer estimate as a probe timeout.

    ``SRTT + 4 * RTTVAR`` clamped to ``[floor, ceiling]``; before any
    sample the ceiling applies.  Faster than the flat wait on silent
    tails, but an under-estimate stars probes the sequential tool would
    have caught — use where throughput beats exact replay.
    """

    def __init__(
        self,
        ceiling: float = 2.0,
        floor: float = 0.1,
        alpha: float = 1 / 8,
        beta: float = 1 / 4,
    ) -> None:
        if not 0 < floor <= ceiling:
            raise TracerError(
                f"need 0 < floor <= ceiling, got [{floor}, {ceiling}]"
            )
        self.ceiling = ceiling
        self.floor = floor
        self.alpha = alpha
        self.beta = beta
        self.srtt: float | None = None
        self.rttvar = 0.0

    def timeout_for(self) -> float:
        if self.srtt is None:
            return self.ceiling
        estimate = self.srtt + 4.0 * self.rttvar
        return min(self.ceiling, max(self.floor, estimate))

    def observe(self, rtt: float) -> None:
        if self.srtt is None:
            self.srtt = rtt
            self.rttvar = rtt / 2.0
            return
        self.rttvar = ((1 - self.beta) * self.rttvar
                       + self.beta * abs(self.srtt - rtt))
        self.srtt = (1 - self.alpha) * self.srtt + self.alpha * rtt


# ----------------------------------------------------------------------
# lane entry specs
# ----------------------------------------------------------------------
@dataclass
class TraceSpec:
    """One trace a lane should run.

    ``builder_factory`` overrides probe construction (the campaign uses
    it to pin per-trace flows deterministically); None lets the tool
    draw its own builder, exactly as ``tracer.trace(destination)``
    would.
    """

    tracer: Traceroute
    destination: IPv4Address
    builder_factory: Optional[Callable[[], ProbeBuilder]] = None
    #: Opaque caller bookkeeping carried through to the outcome (the
    #: fleet campaign stores (vantage, round) here).
    meta: object = None

    def make_strategy(self, started_at: float, window: int,
                      hints: dict) -> HopLoopStrategy:
        """A hop-loop strategy for this trace, paced by ``hints``.

        Exact (destination, tool) knowledge wins; failing that, any
        tool's depth for this destination is a decent prior — the
        campaign traces Paris first, so the classic trace of the same
        destination starts with its depth instead of speculating.
        """
        tracer = self.tracer
        if self.builder_factory is not None:
            builder = self.builder_factory()
        else:
            builder = tracer.make_builder(IPv4Address(self.destination))
        hint = hints.get((self.destination, tracer.tool))
        if hint is None:
            hint = hints.get(self.destination)
        return HopLoopStrategy(
            builder=builder,
            options=tracer.options,
            tool=tracer.tool,
            source=tracer.socket.source_address,
            destination=self.destination,
            window=window,
            started_at=started_at,
            horizon_hint=hint,
        )

    def record_hints(self, strategy: HopLoopStrategy, hints: dict) -> None:
        hints[(self.destination, self.tracer.tool)] = strategy.halt_ttl
        previous = hints.get(self.destination)
        if previous is None or strategy.halt_ttl > previous:
            hints[self.destination] = strategy.halt_ttl


@dataclass
class StrategySpec:
    """An arbitrary strategy a lane should run.

    ``factory`` receives the lane-start instant and returns the
    strategy; ``meta`` is opaque caller bookkeeping carried through to
    the :class:`TraceOutcome` spec (the campaign stores the destination
    there).
    """

    factory: Callable[[float], ProbeStrategy]
    label: str = "strategy"
    meta: object = None

    def make_strategy(self, started_at: float, window: int,
                      hints: dict) -> ProbeStrategy:
        return self.factory(started_at)

    def record_hints(self, strategy: ProbeStrategy, hints: dict) -> None:
        """Generic strategies feed no horizon memo."""


@dataclass
class TraceOutcome:
    """A finished lane entry with its lane coordinates.

    ``result`` is whatever the spec's strategy produced — a
    :class:`repro.tracer.result.TracerouteResult` for :class:`TraceSpec`
    entries, the strategy's own product for :class:`StrategySpec`.
    """

    lane: int
    index: int
    spec: object
    result: object


class TraceSession:
    """Generic driver state for one running strategy.

    All probing decisions live in the strategy; the session only
    remembers which socket tokens are outstanding so the scheduler can
    cancel them when the strategy finishes early.
    """

    __slots__ = ("strategy", "tokens")

    def __init__(self, strategy: ProbeStrategy) -> None:
        self.strategy = strategy
        self.tokens: set[int] = set()

    @property
    def done(self) -> bool:
        return self.strategy.finished


# ----------------------------------------------------------------------
# response demultiplexing
# ----------------------------------------------------------------------
def probe_match_keys(probe: Packet) -> list[tuple]:
    """Exact-match demux keys under which a probe expects answers.

    One key covers ICMP errors quoting the probe (source, destination,
    protocol, first eight transport octets — the RFC 792 quote); probe
    types that can also be answered directly (Echo Reply, TCP) add a
    second key.  Dict hits are *confirmed* with the builder's own
    matching logic, and misses fall back to a linear scan with it, so
    the index is purely an accelerator.
    """
    keys = [("quote", probe.src, probe.dst, int(probe.ip.protocol),
             probe.first_eight_transport_octets())]
    transport = probe.transport
    if isinstance(transport, ICMPEchoRequest):
        keys.append(("echo", probe.dst, transport.identifier,
                     transport.sequence))
    elif isinstance(transport, TCPHeader):
        keys.append(("tcp", probe.dst, transport.dst_port,
                     transport.src_port, (transport.seq + 1) & 0xFFFFFFFF))
    return keys


def response_match_keys(packet: Packet) -> list[tuple]:
    """The demux keys a received packet answers to."""
    transport = packet.transport
    if isinstance(transport, _ICMP_ERROR):
        quoted = transport.quoted_header
        return [("quote", quoted.src, quoted.dst, int(quoted.protocol),
                 transport.quoted_payload[:8])]
    if isinstance(transport, ICMPEchoReply):
        return [("echo", packet.src, transport.identifier,
                 transport.sequence)]
    if isinstance(transport, TCPHeader):
        return [("tcp", packet.src, transport.src_port, transport.dst_port,
                 transport.ack)]
    return []


# ----------------------------------------------------------------------
# lanes and the scheduler
# ----------------------------------------------------------------------
@dataclass
class _Lane:
    index: int
    specs: list
    inter_trace_delay: float = 0.0
    position: int = 0
    session: Optional[TraceSession] = None
    #: The socket this lane probes through (a vantage point); defaults
    #: to the scheduler's own socket.
    socket: Optional[AsyncProbeSocket] = None
    #: Per-lane timeout policy; defaults to the scheduler's.
    timeout_policy: object = None
    #: Per-lane horizon-hint memo; defaults to the scheduler's shared
    #: dict.  Fleet lanes pass a per-vantage dict so one vantage's halt
    #: depths never pace another vantage's traces.
    hints: Optional[dict] = None


@dataclass
class _Outstanding:
    session: TraceSession
    request: ProbeRequest
    lane: _Lane
    keys: list = field(default_factory=list)
    sent_at: float = 0.0


#: Claim freshness slack, seconds: float error on ``arrival - rtt`` is
#: ~1e-11 at campaign clock scales, event spacing is >= link latency.
_CLAIM_TOLERANCE = 1e-6


class ProbeScheduler:
    """Drive lanes of strategies over one simulated clock."""

    def __init__(
        self,
        network: Network,
        host: MeasurementHost,
        timeout: float | None = None,
        window: int = DEFAULT_WINDOW,
        timeout_policy=None,
        socket: AsyncProbeSocket | None = None,
        horizon_hints: dict | None = None,
    ) -> None:
        if socket is None:
            socket = AsyncProbeSocket(
                network, host,
                timeout=timeout if timeout is not None else 2.0,
            )
        self.network = network
        self.socket = socket
        self.clock = network.clock
        self.window = window
        # An explicit timeout wins over the socket's own default, also
        # when the socket was passed in.
        if timeout_policy is not None:
            self.timeout_policy = timeout_policy
        else:
            self.timeout_policy = FixedTimeout(
                timeout if timeout is not None else socket.timeout)
        self.events = EventQueue()
        self.lanes: list[_Lane] = []
        self.outcomes: list[TraceOutcome] = []
        # Every socket lanes probe through, in registration order (the
        # default socket first).  The run loop flushes and polls them
        # all; per-arrival-instant response order follows this order,
        # which is deterministic because lanes register deterministically.
        self._sockets: list[AsyncProbeSocket] = [self.socket]
        #: (destination, tool) -> halt TTL of the previous trace; pass a
        #: shared dict to carry pacing knowledge across scheduler runs.
        self.horizon_hints = horizon_hints if horizon_hints is not None else {}
        # Outstanding probes are keyed by a scheduler-assigned serial,
        # NOT the socket's own SentProbe token: with per-lane sockets
        # (the vantage fleet) every socket numbers its probes from
        # zero, and socket tokens collide across vantages.
        self._outstanding: dict[int, _Outstanding] = {}
        self._next_probe_id = 0
        # Demux index: match key -> tokens of outstanding probes that
        # answer to it.  A key can be shared (tcptraceroute's probes
        # differ only in IP ID), so each holds a token set and hits are
        # confirmed with the builder's own matching logic.
        self._index: dict[tuple, set[int]] = {}
        # Keys of probes no longer waiting (expired, cancelled, already
        # answered): late responses to them are recognised here instead
        # of falling through to the full matching scan.
        self._dead_keys: set[tuple] = set()

    # -- building the workload ------------------------------------------
    def add_lane(self, specs: Iterable,
                 inter_trace_delay: float = 0.0,
                 socket: AsyncProbeSocket | None = None,
                 timeout_policy=None,
                 horizon_hints: dict | None = None) -> int:
        """Queue a lane of :class:`TraceSpec` / :class:`StrategySpec`.

        ``socket`` probes the lane through another vantage point (the
        scheduler's own socket when None); ``timeout_policy`` and
        ``horizon_hints`` likewise override the scheduler-wide defaults
        for this lane only.
        """
        if socket is None:
            socket = self.socket
        elif socket not in self._sockets:
            self._sockets.append(socket)
        lane = _Lane(index=len(self.lanes), specs=list(specs),
                     inter_trace_delay=inter_trace_delay,
                     socket=socket,
                     timeout_policy=(timeout_policy if timeout_policy
                                     is not None else self.timeout_policy),
                     hints=(horizon_hints if horizon_hints is not None
                            else self.horizon_hints))
        self.lanes.append(lane)
        return lane.index

    # -- the event loop --------------------------------------------------
    def run(self) -> list[TraceOutcome]:
        """Run every lane to completion; outcomes in (lane, index) order."""
        for lane in self.lanes:
            self._start_next_trace(lane)
        self._flush_sockets()
        while any(lane.session is not None
                  or lane.position < len(lane.specs)
                  for lane in self.lanes):
            self._drop_stale_expires()
            arrival = self.network.next_delivery_at()
            event_time = self.events.peek_time()
            if arrival is None and event_time is None:
                break
            if arrival is not None and (event_time is None
                                        or arrival <= event_time):
                self._advance_clock(arrival)
                for sock in self._sockets:
                    for response in sock.poll(until=arrival):
                        self._on_response(response, sock)
            else:
                event = self.events.pop()
                self._advance_clock(event.time)
                if event.kind is EventKind.EXPIRE:
                    self._on_expire(event.payload)
                else:
                    self._start_next_trace(event.payload)
            # One cohort per iteration: everything staged while handling
            # this instant's events walks the network together.
            self._flush_sockets()
        # Drain responses still in flight for cancelled speculative
        # probes: left buffered, a later scheduler on this network
        # could claim them against byte-identical re-probes (the
        # campaign reuses per-trace flows across runs by design).
        # Draining *through the sockets* keeps their received counters
        # execution-mode independent: a straggler addressed to a
        # vantage is counted whether or not some other lane's activity
        # would have polled it in before the run ended.
        for sock in self._sockets:
            sock.poll(until=float("inf"))
        self.network.deliveries(until=float("inf"))
        self.outcomes.sort(key=lambda o: (o.lane, o.index))
        return self.outcomes

    def _flush_sockets(self) -> None:
        """Walk every socket's staged probes as this instant's cohort.

        All vantages' probes go down in one
        :meth:`Network.submit_cohorts` call, so the transit plane
        shares route resolutions and egress fan-outs across the whole
        fleet's traffic — the walker's round-canonical scheduling is
        what keeps each vantage's timeline independent of who else is
        in the cohort (the sharding guarantee).
        """
        batches = []
        for sock in self._sockets:
            staged = sock.take_staged()
            if staged:
                batches.append((sock.host, staged))
        if batches:
            self.network.submit_cohorts(batches)

    def _drop_stale_expires(self) -> None:
        """Discard deadlines of probes already answered or cancelled.

        Without this, a finished campaign's leftover deadlines would
        drag the clock out to the last speculative probe's timeout even
        though no trace is waiting on it.
        """
        while True:
            event = self.events.peek()
            if (event is None or event.kind is not EventKind.EXPIRE
                    or event.payload in self._outstanding):
                return
            self.events.pop()

    def _advance_clock(self, timestamp: float) -> None:
        if timestamp > self.clock.now:
            self.clock.advance_to(timestamp)

    # -- lane / session lifecycle ---------------------------------------
    def _start_next_trace(self, lane: _Lane) -> None:
        if lane.position >= len(lane.specs):
            lane.session = None
            return
        spec = lane.specs[lane.position]
        strategy = spec.make_strategy(self.clock.now, self.window,
                                      lane.hints)
        session = TraceSession(strategy)
        lane.session = session
        if session.done:
            # A strategy with nothing to ask (e.g. already run to
            # completion elsewhere) still yields its outcome.
            self._retire(lane, session)
            return
        self._pump(lane)

    def _pump(self, lane: _Lane) -> None:
        """Send whatever the lane's strategy wants in flight now."""
        session = lane.session
        if session is None or session.done:
            return
        for request in session.strategy.next_probes():
            if request.timeout is not None:
                timeout = request.timeout
            else:
                timeout = lane.timeout_policy.timeout_for()
            sent = lane.socket.send_nowait(request.probe.build(),
                                           timeout=timeout,
                                           packet=request.probe)
            probe_id = self._next_probe_id
            self._next_probe_id += 1
            keys = probe_match_keys(request.probe)
            record = _Outstanding(session=session, request=request,
                                  lane=lane, keys=keys,
                                  sent_at=sent.sent_at)
            self._outstanding[probe_id] = record
            session.tokens.add(probe_id)
            for key in keys:
                self._index.setdefault(key, set()).add(probe_id)
            self.events.push(sent.deadline, EventKind.EXPIRE, probe_id)
        if session.done:
            # The strategy finished while emitting (no probe needed).
            self._retire(lane, session)
        elif not session.tokens:
            # Protocol violation: not finished, nothing in flight, and
            # nothing to send — no event will ever wake this lane.
            raise TracerError(
                "strategy stalled: not finished, yet no probe in flight")

    def _after_resolution(self, lane: _Lane) -> None:
        session = lane.session
        if session is None:
            return
        if session.done:
            self._retire(lane, session)
        else:
            self._pump(lane)

    def _retire(self, lane: _Lane, session: TraceSession) -> None:
        # Cancel probes the strategy no longer waits for (speculative
        # sends past its halt): their responses, if any, are stragglers.
        for token in list(session.tokens):
            self._forget(token)
        spec = lane.specs[lane.position]
        self.outcomes.append(TraceOutcome(
            lane=lane.index, index=lane.position, spec=spec,
            result=session.strategy.result(),
        ))
        spec.record_hints(session.strategy, lane.hints)
        lane.position += 1
        lane.session = None
        if lane.position < len(lane.specs):
            if lane.inter_trace_delay > 0:
                self.events.push(self.clock.now + lane.inter_trace_delay,
                                 EventKind.LANE_START, lane)
            else:
                self._start_next_trace(lane)

    def _forget(self, token: int) -> None:
        record = self._outstanding.pop(token, None)
        if record is None:
            return
        record.session.tokens.discard(token)
        for key in record.keys:
            tokens = self._index.get(key)
            if tokens is not None:
                tokens.discard(token)
                if not tokens:
                    del self._index[key]
            self._dead_keys.add(key)

    # -- event handlers --------------------------------------------------
    def _on_expire(self, token: int) -> None:
        record = self._outstanding.get(token)
        if record is None:
            return
        self._forget(token)
        record.session.strategy.on_timeout(record.request.token,
                                           self.clock.now)
        self._after_resolution(record.lane)

    def _on_response(self, response: ProbeResponse,
                     socket: AsyncProbeSocket | None = None) -> None:
        token, record = self._claim(response,
                                    socket if socket is not None
                                    else self.socket)
        if record is None:
            return
        self._forget(token)
        record.session.strategy.on_reply(record.request.token, response,
                                         self.clock.now)
        record.lane.timeout_policy.observe(response.rtt)
        self._after_resolution(record.lane)

    def _is_fresh(self, response: ProbeResponse,
                  record: _Outstanding) -> bool:
        """True when ``response`` answers a probe sent at the record's
        own send instant.

        A response's walk time is measured from *its* probe's send, so
        ``received_at - rtt`` recovers that instant.  The check rejects
        a stale reply to an expired probe claiming a byte-identical
        re-probe — MDA re-uses a timed-out hop's flow index at deeper
        hops, and the campaign re-probes identical flows across rounds.
        """
        implied_send = response.received_at - response.rtt
        return abs(implied_send - record.sent_at) <= _CLAIM_TOLERANCE

    def _claim(
        self, response: ProbeResponse,
        socket: AsyncProbeSocket,
    ) -> tuple[Optional[int], Optional[_Outstanding]]:
        """Find the outstanding probe this response answers, if any.

        Only probes sent through ``socket`` — the vantage point the
        response actually arrived at — are candidates.  Two vantages'
        probes can share a demux key (identical ICMP Echo identifiers
        toward one destination) and even satisfy each other's builder
        matching; the socket fence is what keeps a reply, stale or not,
        from ever being claimed by the wrong vantage's trace.
        """
        packet = response.packet
        keys = response_match_keys(packet)
        for key in keys:
            tokens = self._index.get(key)
            if not tokens:
                continue
            # Oldest first: when several live probes answer to one key
            # (tcptraceroute's constant ports), the earliest-sent one
            # wins, as it would under stop-and-wait.
            for token in sorted(tokens):
                record = self._outstanding.get(token)
                if (record is None or record.lane.socket is not socket
                        or not self._is_fresh(response, record)):
                    continue
                if record.request.builder.matches(record.request.probe,
                                                  packet):
                    return token, record
        if any(key in self._dead_keys for key in keys):
            # A straggler for a probe that stopped waiting (expired or
            # its trace already halted) — the sequential tool would
            # have printed its star long ago.
            return None, None
        # Exotic responses (mangled quotes) miss the index; fall back to
        # the full per-tool matching scan so nothing real is dropped.
        for token, record in self._outstanding.items():
            if (record.lane.socket is socket
                    and self._is_fresh(response, record)
                    and record.request.builder.matches(record.request.probe,
                                                       packet)):
                return token, record
        return None, None
