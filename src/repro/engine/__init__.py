"""The event-driven probe engine.

Where :class:`repro.sim.socketapi.ProbeSocket` and the
:class:`repro.tracer.base.Traceroute` loop are strictly stop-and-wait —
one probe in flight, the paper's 2-second timeout serialising every hop
— this package keeps a configurable *window* of probes in flight per
trace and many traces in flight per vantage point, all scheduled as
discrete events on the shared :class:`repro.sim.clock.SimClock`:

- :mod:`repro.engine.events` — the time-ordered event queue;
- :mod:`repro.engine.asyncsocket` — the non-blocking socket
  (``send_nowait`` / ``poll``) over :meth:`Network.submit_cohort`;
- :mod:`repro.engine.scheduler` — timeout policies, lane specs, and
  the scheduler that drives sans-I/O :mod:`repro.probing` strategies
  (hop loops, MDA...) as lanes over one clock, each with a window of
  probes in flight;
- :mod:`repro.engine.pipeline` — drop-in pipelined drivers wrapping the
  existing Paris / classic / TCP tools.

Responses come back asynchronously and possibly out of order (a deeper
hop's router can answer before a nearer one — the in-flight-probe
regime the paper's Sec. 2.3 measurement avoided by design); matching
relies on the same per-tool logic in :mod:`repro.tracer.matching`, and
the probing algorithms themselves — star budgets, halt rules, TTL-order
adjudication, MDA stopping — live in :mod:`repro.probing`, shared with
the blocking stop-and-wait driver, so route inferences are identical to
the sequential path.
"""

from repro.engine.asyncsocket import AsyncProbeSocket, SentProbe
from repro.engine.events import Event, EventKind, EventQueue
from repro.engine.pipeline import PipelinedTraceroute
from repro.engine.scheduler import (
    AdaptiveTimeout,
    FixedTimeout,
    ProbeScheduler,
    StrategySpec,
    TraceOutcome,
    TraceSession,
    TraceSpec,
)

__all__ = [
    "AdaptiveTimeout",
    "AsyncProbeSocket",
    "Event",
    "EventKind",
    "EventQueue",
    "FixedTimeout",
    "PipelinedTraceroute",
    "ProbeScheduler",
    "SentProbe",
    "StrategySpec",
    "TraceOutcome",
    "TraceSession",
    "TraceSpec",
]
