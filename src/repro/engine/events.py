"""The engine's discrete-event queue.

A thin, deterministic priority queue over the simulated clock: events
pop in ``(time, kind, insertion order)`` order.  Response *arrivals* are
deliberately not queue events — they live in the network's pending
delivery buffer (:meth:`repro.sim.network.Network.deliveries`) and the
scheduler interleaves them with queued events, always draining arrivals
up to an event's time first.  That ordering reproduces the sequential
socket's acceptance rule: a response landing exactly at its probe's
deadline still counts (the stop-and-wait socket stars only responses
*strictly* later than the timeout).
"""

from __future__ import annotations

import enum
import heapq
from dataclasses import dataclass
from typing import Any, Optional


class EventKind(enum.IntEnum):
    """Queue event kinds; the integer value breaks ties at equal times."""

    #: A probe's response deadline passed — adjudicate a star.
    EXPIRE = 0
    #: A lane is due to start its next trace (inter-trace pacing).
    LANE_START = 1


@dataclass(frozen=True)
class Event:
    """One scheduled occurrence."""

    time: float
    kind: EventKind
    payload: Any = None


class EventQueue:
    """A heapq of :class:`Event`, FIFO among exact ties."""

    def __init__(self) -> None:
        self._heap: list[tuple[float, int, int, Event]] = []
        self._seq = 0

    def push(self, time: float, kind: EventKind, payload: Any = None) -> Event:
        event = Event(time=time, kind=kind, payload=payload)
        heapq.heappush(self._heap, (time, int(kind), self._seq, event))
        self._seq += 1
        return event

    def pop(self) -> Event:
        return heapq.heappop(self._heap)[3]

    def peek(self) -> Optional[Event]:
        """The earliest event without removing it, or None when empty."""
        if not self._heap:
            return None
        return self._heap[0][3]

    def peek_time(self) -> Optional[float]:
        """The earliest scheduled time, or None when empty."""
        if not self._heap:
            return None
        return self._heap[0][0]

    def __len__(self) -> int:
        return len(self._heap)

    def __bool__(self) -> bool:
        return bool(self._heap)
