"""The non-blocking probe socket.

Same contract as :class:`repro.sim.socketapi.ProbeSocket` at the wire
boundary — probes go down as bytes and are parsed (and validated)
here, responses come back up as bytes and are re-parsed — but nothing
blocks: :meth:`AsyncProbeSocket.send_nowait` stages a probe and
returns immediately with its delivery deadline, :meth:`flush` walks the
staged cohort through :meth:`Network.submit_cohort`, and :meth:`poll`
surfaces whatever responses have *arrived* by the given time.  Matching
responses back to probes is the scheduler's job (it has the builders);
the socket only moves packets.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import TracerError
from repro.net.packet import Packet
from repro.obs.registry import active_registry
from repro.sim.endhost import MeasurementHost
from repro.sim.network import Network
from repro.sim.socketapi import (
    DEFAULT_TIMEOUT,
    ProbeResponse,
    parse_probe,
    require_vantage_point,
)


@dataclass
class SentProbe:
    """A staged probe: its token, parsed form, and response deadline."""

    token: int
    packet: Packet
    sent_at: float
    deadline: float


class AsyncProbeSocket:
    """Send probe bytes without waiting; poll for arrived responses."""

    def __init__(
        self,
        network: Network,
        host: MeasurementHost,
        timeout: float = DEFAULT_TIMEOUT,
    ) -> None:
        require_vantage_point(network, host)
        self.network = network
        self.host = host
        self.timeout = timeout
        self.probes_sent = 0
        self.responses_received = 0
        self._outbox: list[Packet] = []
        self._next_token = 0
        # probes_sent / responses_received are maintained as plain ints
        # either way; with a registry on the network a collector mirrors
        # them into counter children at snapshot time, so the hot send
        # and poll paths pay nothing for instrumentation.
        registry = active_registry(network)
        if registry is not None:
            client = str(host.address)
            self._m_sent = registry.counter(
                "repro_probes_sent_total",
                "Probes staged for the wire, per probing client.",
                ("client",)).labels(client)
            self._m_received = registry.counter(
                "repro_responses_received_total",
                "Responses surfaced at the vantage point, per client.",
                ("client",)).labels(client)
            self._m_published = [0, 0]
            registry.add_collector(self._collect_metrics)

    def _collect_metrics(self) -> None:
        """Publish the socket's count deltas (collect-on-scrape)."""
        published = self._m_published
        delta = self.probes_sent - published[0]
        if delta:
            self._m_sent.inc(delta)
            published[0] = self.probes_sent
        delta = self.responses_received - published[1]
        if delta:
            self._m_received.inc(delta)
            published[1] = self.responses_received

    @property
    def source_address(self):
        """The vantage point's IP address (probe Source Address)."""
        return self.host.address

    def send_nowait(self, probe_bytes: bytes,
                    timeout: float | None = None,
                    packet: Packet | None = None) -> SentProbe:
        """Stage one probe for the next :meth:`flush`; never blocks.

        Validation matches the blocking socket: the bytes must parse as
        a packet sourced at the vantage point.  ``packet`` is the
        zero-copy path for callers that built ``probe_bytes`` from a
        :class:`Packet` they still hold (the scheduler's pump): the
        serialize→reparse round trip is skipped and only the vantage
        source check runs — the bytes and the packet are the same
        immutable object's wire form.  The returned deadline is ``now +
        timeout`` — the instant after which silence becomes a star.
        """
        if packet is not None:
            wire = packet.build()
            if wire is not probe_bytes and wire != probe_bytes:
                raise TracerError(
                    "send_nowait packet= does not serialize to the "
                    "probe bytes passed alongside it"
                )
            if packet.src != self.host.address:
                raise TracerError(
                    f"probe source {packet.src} is not the vantage point "
                    f"address {self.host.address}"
                )
            probe = packet
        else:
            probe = parse_probe(probe_bytes, self.host)
        self.probes_sent += 1
        self._outbox.append(probe)
        now = self.network.clock.now
        wait = self.timeout if timeout is None else timeout
        sent = SentProbe(
            token=self._next_token,
            packet=probe,
            sent_at=now,
            deadline=now + wait,
        )
        self._next_token += 1
        return sent

    def take_staged(self) -> list[Packet]:
        """Hand over (and clear) the staged outbox without walking it.

        The scheduler's coalesced flush path: it collects every
        socket's staged probes and submits them through
        :meth:`Network.submit_cohorts` as one cross-vantage cohort.
        """
        outbox, self._outbox = self._outbox, []
        return outbox

    def flush(self) -> None:
        """Walk all staged probes as one cohort at the current instant."""
        if not self._outbox:
            return
        self.network.submit_cohort(self.take_staged(), at=self.host)

    def next_arrival_at(self) -> float | None:
        """When the earliest buffered delivery lands (any recipient)."""
        return self.network.next_delivery_at()

    def poll(self, until: float | None = None) -> list[ProbeResponse]:
        """Responses that reached the vantage point by ``until``.

        ``raw`` carries the wire bytes as the blocking socket's would;
        the packet itself is handed over zero-copy (it is a frozen
        dataclass, and serialisation materialises the same checksums a
        re-parse would read), which is where an event engine sheds the
        per-read allocation cost of the stop-and-wait socket.  ``rtt``
        is the walk's elapsed time (send instant to arrival).
        """
        responses: list[ProbeResponse] = []
        for arrival, delivery in self.network.deliveries(until=until,
                                                         node=self.host):
            responses.append(ProbeResponse(
                packet=delivery.packet,
                raw=delivery.packet.build(),
                rtt=delivery.elapsed,
                received_at=arrival,
            ))
        # Everything that reached the vantage point counts as received,
        # matched to a probe or not — the same stance the blocking
        # socket takes on deliveries it cannot tie to its probe.
        self.responses_received += len(responses)
        return responses
