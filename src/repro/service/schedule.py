"""Per-target probe calendars: when each destination is re-probed.

A monitor does not probe every target at the same cadence — hot
prefixes deserve a tighter loop than stable ones.  The schedule
assigns each destination a period from :attr:`MonitorConfig.periods`
round-robin over the *global* destination index (so every execution
mode, sharded or not, agrees on who probes when), and lays out the
probe instants ``t = k * period`` for every ``k`` with
``t < duration`` (capped by ``max_rounds``).

The instants become :class:`repro.engine.scheduler.TraceSpec`
``not_before`` constants — a lane reaching a spec early parks on its
own wake-up event.  There is deliberately *no* round barrier: a
target's round ``k`` never waits for any other target (or vantage) to
finish round ``k - 1``, which is what keeps each vantage's timeline a
pure function of its own lanes and preserves the sharding guarantee.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from repro.net.inet import IPv4Address
from repro.service.config import MonitorConfig


@dataclass(frozen=True)
class TargetPlan:
    """One destination's probe calendar."""

    destination: IPv4Address
    #: Global index of this destination in the monitor's target list
    #: (the period-assignment key, identical in every execution mode).
    index: int
    period: float
    #: Scheduled round start instants, ``times[k] = k * period``.
    times: tuple[float, ...]

    @property
    def rounds(self) -> int:
        """How many rounds the horizon grants this target."""
        return len(self.times)


def rounds_for(period: float, duration: float,
               max_rounds: int | None) -> int:
    """Rounds fitting the horizon (always at least one)."""
    fits = 1
    while fits * period < duration:
        fits += 1
    if max_rounds is not None:
        fits = min(fits, max_rounds)
    return max(fits, 1)


def build_schedule(destinations: Sequence[IPv4Address],
                   config: MonitorConfig) -> list[TargetPlan]:
    """The full target calendar, in destination-list order."""
    plans: list[TargetPlan] = []
    periods = config.periods
    for index, destination in enumerate(destinations):
        period = periods[index % len(periods)]
        count = rounds_for(period, config.duration, config.max_rounds)
        plans.append(TargetPlan(
            destination=IPv4Address(destination),
            index=index,
            period=period,
            times=tuple(k * period for k in range(count)),
        ))
    return plans
