"""Rolling observation windows: one stream per (vantage, destination, tool).

Every route a monitored target produces flows into its stream's
:class:`RollingWindow`, which keeps the last ``depth`` observations and
summarizes them — current route signature, RTT quantiles (over trace
durations: the per-trace wall the paper's operator would watch),
signature-change count, and star / loop / cycle / diamond rates — the
state the onset detector and the health snapshot read.

Windows are *client-scope* state in the observability sense: each is a
pure function of its own vantage's routes, so the merged window set of
a sharded run is byte-identical to the single-process run's.  The
canonical dict form (:meth:`RollingWindow.to_dict`) is what enters the
:meth:`repro.service.result.MonitorResult.signature` digest.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field

from repro.core.attribution import ToolCensus, compute_tool_census
from repro.core.diamonds import diamonds_by_destination
from repro.core.route import MeasuredRoute


def route_signature(route: MeasuredRoute) -> tuple[str, ...]:
    """The route as a comparable hop tuple (stars render as ``*``)."""
    return tuple("*" if hop.address is None else str(hop.address)
                 for hop in route.hops)


def quantile(values: list[float], q: float) -> float:
    """Deterministic nearest-rank quantile (no interpolation).

    Nearest-rank returns an *observed* value, so the float that enters
    the canonical serialization is bit-identical across execution
    modes — interpolation would manufacture new floats.
    """
    if not values:
        return 0.0
    ordered = sorted(values)
    rank = min(len(ordered) - 1, max(0, int(q * len(ordered))))
    return ordered[rank]


@dataclass
class _Observation:
    """One route's digest inside a window."""

    round_index: int
    started_at: float
    duration: float
    signature: tuple[str, ...]
    route: MeasuredRoute
    census: ToolCensus = field(repr=False, default=None)


class RollingWindow:
    """The last ``depth`` observations of one (vantage, dest, tool)."""

    def __init__(self, vantage: int, client: str, destination: str,
                 tool: str, depth: int) -> None:
        self.vantage = vantage
        self.client = client
        self.destination = destination
        self.tool = tool
        self.depth = depth
        self._entries: deque[_Observation] = deque(maxlen=depth)
        #: Signature changes observed over the stream's whole life
        #: (not just inside the current window).
        self.signature_changes = 0
        self.observations = 0

    def push(self, route: MeasuredRoute) -> _Observation:
        """Fold one route in; returns its digest (census included)."""
        entry = _Observation(
            round_index=route.round_index,
            started_at=route.started_at,
            duration=route.trace_duration,
            signature=route_signature(route),
            route=route,
            census=compute_tool_census(self.tool, [route]),
        )
        if self._entries and entry.signature != self._entries[-1].signature:
            self.signature_changes += 1
        self._entries.append(entry)
        self.observations += 1
        return entry

    @property
    def last(self) -> _Observation | None:
        return self._entries[-1] if self._entries else None

    # ------------------------------------------------------------------
    def to_dict(self) -> dict:
        """Canonical JSON-ready summary (deterministic across modes)."""
        entries = list(self._entries)
        durations = [e.duration for e in entries]
        routes = [e.route for e in entries]
        n = len(entries)
        loop_instances = sum(e.census.loop_instances for e in entries)
        cycle_instances = sum(e.census.cycle_instances for e in entries)
        star_hops = sum(e.census.star_hops for e in entries)
        diamonds = diamonds_by_destination(routes)
        diamond_count = sum(len(v) for v in diamonds.values())
        return {
            "vantage": self.vantage,
            "client": self.client,
            "destination": self.destination,
            "tool": self.tool,
            "observations": self.observations,
            "window": n,
            "signature": list(entries[-1].signature) if entries else [],
            "signature_changes": self.signature_changes,
            "rtt_p50": quantile(durations, 0.50),
            "rtt_p90": quantile(durations, 0.90),
            "rounds": [e.round_index for e in entries],
            "loop_rate": loop_instances / n if n else 0.0,
            "cycle_rate": cycle_instances / n if n else 0.0,
            "star_rate": star_hops / n if n else 0.0,
            "diamonds": diamond_count,
        }
