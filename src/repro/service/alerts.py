"""The alerting pipeline: from labeled onsets to a deduplicated log.

An onset stream is too raw to page on: the same anomaly re-onsets
every time a rate-limit phase swings back, flapping targets drown the
log, and four vantages seeing one broken router should be one incident,
not four.  :func:`build_alert_log` runs the classic pipeline stages
over the *merged* onset stream:

1. **canonical order** — onsets sort by (at, vantage, destination,
   tool, family, signature) so the pipeline's input is identical no
   matter which execution mode produced the stream;
2. **fingerprinting** — sha256 over (destination, tool, family,
   signature, cause), truncated, so one anomaly has one identity across
   rounds and vantages;
3. **suppression** — a repeat of a fingerprint within
   :attr:`MonitorConfig.suppression_window` of its last alert folds
   into that alert (``repeats`` grows, the vantage set widens);
4. **adaptive thresholds** — once a (vantage, destination) pair has
   emitted :attr:`MonitorConfig.flap_threshold` alerts it counts as
   flapping, and further fingerprints must accumulate
   :attr:`MonitorConfig.flap_penalty` pending onsets before emitting;
5. **severity** — family base (cycle 3, loop / route-change 2,
   mid-route star 1) plus one when the attribution labeled the onset
   ``real-routing`` — real incidents outrank artifacts of equal shape;
6. **grouping** — emitted alerts sharing a non-empty suspect address
   within :attr:`MonitorConfig.group_window`, across at least two
   vantages, become one :class:`AlertGroup` whose severity is the
   members' max plus one.

The pipeline is pure data-in, data-out; :meth:`AlertLog.to_jsonl` is
the byte stream the determinism tests compare across sharded runs.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field

from repro.service.config import MonitorConfig
from repro.service.detect import Onset

#: Family -> base severity.
SEVERITY_BASE = {
    "cycle": 3,
    "loop": 2,
    "route-change": 2,
    "mid-route-star": 1,
}


def onset_fingerprint(onset: Onset) -> str:
    """A stable identity for the anomaly the onset reports.

    Deliberately excludes the vantage (so vantages share fingerprints)
    and the round (so repeats dedup).
    """
    text = "|".join((onset.destination, onset.tool, onset.family,
                     onset.signature, onset.cause))
    return hashlib.sha256(text.encode()).hexdigest()[:16]


@dataclass
class Alert:
    """One emitted alert (possibly accumulating suppressed repeats)."""

    fingerprint: str
    destination: str
    tool: str
    family: str
    signature: str
    cause: str
    suspect: str
    severity: int
    first_at: float
    last_at: float
    #: Onsets folded into this alert beyond the first.
    repeats: int = 0
    vantages: list = field(default_factory=list)
    group: int = -1

    def to_dict(self) -> dict:
        """Canonical JSON-ready form (key order fixed)."""
        return {
            "fingerprint": self.fingerprint,
            "destination": self.destination,
            "tool": self.tool,
            "family": self.family,
            "signature": self.signature,
            "cause": self.cause,
            "suspect": self.suspect,
            "severity": self.severity,
            "first_at": self.first_at,
            "last_at": self.last_at,
            "repeats": self.repeats,
            "vantages": self.vantages,
            "group": self.group,
        }


@dataclass
class AlertGroup:
    """A cross-vantage incident: alerts sharing one suspect address."""

    index: int
    suspect: str
    severity: int
    first_at: float
    last_at: float
    fingerprints: list = field(default_factory=list)
    vantages: list = field(default_factory=list)

    def to_dict(self) -> dict:
        return {
            "index": self.index,
            "suspect": self.suspect,
            "severity": self.severity,
            "first_at": self.first_at,
            "last_at": self.last_at,
            "fingerprints": self.fingerprints,
            "vantages": self.vantages,
        }


@dataclass
class AlertLog:
    """The pipeline's output: alerts, incident groups, and counters."""

    alerts: list
    groups: list
    #: Pipeline accounting: onsets in, alerts out, suppressed,
    #: threshold-held, per-cause and per-family tallies.
    counters: dict = field(default_factory=dict)

    def to_dict(self) -> dict:
        return {
            "alerts": [a.to_dict() for a in self.alerts],
            "groups": [g.to_dict() for g in self.groups],
            "counters": self.counters,
        }

    def to_jsonl(self) -> str:
        """One JSON object per alert, groups and counters last — the
        byte stream the determinism contract compares."""
        lines = [json.dumps(a.to_dict(), sort_keys=True)
                 for a in self.alerts]
        lines.extend(json.dumps(g.to_dict(), sort_keys=True)
                     for g in self.groups)
        lines.append(json.dumps({"counters": self.counters},
                                sort_keys=True))
        return "\n".join(lines) + "\n"

    def signature(self) -> str:
        """sha256 over the canonical byte stream."""
        return hashlib.sha256(self.to_jsonl().encode()).hexdigest()


def _canonical_order(onsets: list[Onset]) -> list[Onset]:
    return sorted(onsets, key=lambda o: (
        o.at, o.vantage, o.destination, o.tool, o.family, o.signature))


def build_alert_log(onsets: list[Onset],
                    config: MonitorConfig) -> AlertLog:
    """Run the full pipeline over a merged onset stream."""
    ordered = _canonical_order(onsets)
    by_fingerprint: dict[str, Alert] = {}
    emitted: list[Alert] = []
    #: (vantage, destination) -> alerts emitted: the flap detector.
    flap_counts: dict[tuple[int, str], int] = {}
    #: fingerprint -> onsets held back by an adaptive threshold.
    pending: dict[str, int] = {}
    suppressed = 0
    held = 0
    by_cause: dict[str, int] = {}
    by_family: dict[str, int] = {}

    for onset in ordered:
        by_cause[onset.cause] = by_cause.get(onset.cause, 0) + 1
        by_family[onset.family] = by_family.get(onset.family, 0) + 1
        fingerprint = onset_fingerprint(onset)
        existing = by_fingerprint.get(fingerprint)
        if existing is not None:
            if onset.at - existing.last_at <= config.suppression_window:
                existing.repeats += 1
                existing.last_at = onset.at
                if onset.vantage not in existing.vantages:
                    existing.vantages.append(onset.vantage)
                suppressed += 1
                continue
            # Outside the window: the anomaly came back — re-alert by
            # dropping the stale record and flowing through emission.
            del by_fingerprint[fingerprint]
        flap_key = (onset.vantage, onset.destination)
        if flap_counts.get(flap_key, 0) >= config.flap_threshold:
            count = pending.get(fingerprint, 0) + 1
            if count < config.flap_penalty:
                pending[fingerprint] = count
                held += 1
                continue
            pending.pop(fingerprint, None)
        severity = SEVERITY_BASE.get(onset.family, 1)
        if onset.cause == "real-routing":
            severity += 1
        alert = Alert(
            fingerprint=fingerprint,
            destination=onset.destination,
            tool=onset.tool,
            family=onset.family,
            signature=onset.signature,
            cause=onset.cause,
            suspect=onset.suspect,
            severity=severity,
            first_at=onset.at,
            last_at=onset.at,
            vantages=[onset.vantage],
        )
        by_fingerprint[fingerprint] = alert
        emitted.append(alert)
        flap_counts[flap_key] = flap_counts.get(flap_key, 0) + 1

    groups = _group(emitted, config)
    counters = {
        "onsets": len(ordered),
        "alerts": len(emitted),
        "suppressed": suppressed,
        "held": held,
        "groups": len(groups),
        "by_cause": dict(sorted(by_cause.items())),
        "by_family": dict(sorted(by_family.items())),
    }
    return AlertLog(alerts=emitted, groups=groups, counters=counters)


def _group(alerts: list[Alert], config: MonitorConfig) -> list[AlertGroup]:
    """Fold alerts sharing a suspect within the group window into
    cross-vantage incidents (>= 2 distinct vantages required)."""
    by_suspect: dict[str, list[Alert]] = {}
    for alert in alerts:
        if alert.suspect:
            by_suspect.setdefault(alert.suspect, []).append(alert)
    groups: list[AlertGroup] = []
    for suspect in sorted(by_suspect):
        members = by_suspect[suspect]
        run: list[Alert] = []
        for alert in members:  # already in emission (time) order
            if run and alert.first_at - run[-1].first_at > config.group_window:
                _emit_group(groups, suspect, run)
                run = []
            run.append(alert)
        _emit_group(groups, suspect, run)
    groups.sort(key=lambda g: (g.first_at, g.suspect))
    for index, group in enumerate(groups):
        group.index = index
        for alert in alerts:
            if alert.fingerprint in group.fingerprints:
                alert.group = index
    return groups


def _emit_group(groups: list[AlertGroup], suspect: str,
                run: list[Alert]) -> None:
    vantages = sorted({v for alert in run for v in alert.vantages})
    if len(vantages) < 2:
        return
    groups.append(AlertGroup(
        index=-1,
        suspect=suspect,
        severity=max(alert.severity for alert in run) + 1,
        first_at=run[0].first_at,
        last_at=max(alert.last_at for alert in run),
        fingerprints=[alert.fingerprint for alert in run],
        vantages=vantages,
    ))
