"""Incremental onset detection with attribution-based labeling.

The streaming half of the paper's argument: watching routes change is
easy — deciding *why* they changed is the hard part, because probing
pathologies (rate-limit silence, delay spikes, duplication) manufacture
route changes and anomalies that a naive monitor alerts on.  The
:class:`OnsetDetector` consumes each (vantage, destination, tool)
stream round by round and emits an :class:`Onset` whenever

- the route signature differs from the previous round's
  (``route-change``), or
- an anomaly signature — loop, cycle, mid-route star — appears that
  was absent the round before (``loop`` / ``cycle`` /
  ``mid-route-star``).

Every onset is labeled *before* it can alert by running the onset's
one-signature census through :func:`repro.core.attribution.attribute_tool`
against the stream's warmup baseline and the in-sim ground truth:

- ``real-routing`` — the attribution's *real* split claims it (a cycle
  inside a scheduled forwarding-loop window; a route change overlapping
  a routing-dynamics event covering the destination);
- ``fault-artifact`` — absent at baseline and an injected fault
  (static profile or an active :class:`repro.faults.ScheduledProfile`
  phase) overlapped the observation: the fault manufactured it;
- ``probe-artifact`` — everything else: probe design or the topology's
  own quirks (the paper's Sec. 4 causes).

Detection state is per-stream and fed in round order, so the onset
list of a vantage is a pure function of that vantage's routes — the
property that makes the merged onset stream of a sharded run identical
to the single-process one.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.attribution import (
    GroundTruth,
    StarSignature,
    ToolCensus,
    attribute_tool,
    compute_tool_census,
)
from repro.core.route import MeasuredRoute
from repro.service.windows import RollingWindow, route_signature

#: Onset families, in severity-base order.
FAMILIES = ("route-change", "loop", "cycle", "mid-route-star")

#: Cause labels the attribution assigns.
CAUSES = ("real-routing", "fault-artifact", "probe-artifact")


@dataclass(frozen=True)
class Onset:
    """One detected change, labeled and ready for the alert pipeline."""

    vantage: int
    client: str
    destination: str
    tool: str
    family: str
    #: Canonical signature text (hop path for route changes, the
    #: anomaly's (address, destination) pair otherwise).
    signature: str
    round_index: int
    #: Simulated start instant of the route that showed the onset.
    at: float
    cause: str
    #: The address the onset points at (loop/cycle address, first
    #: divergent hop of a route change) — the cross-vantage grouping key.
    suspect: str

    def to_dict(self) -> dict:
        """Canonical JSON-ready form."""
        return {
            "vantage": self.vantage,
            "client": self.client,
            "destination": self.destination,
            "tool": self.tool,
            "family": self.family,
            "signature": self.signature,
            "round": self.round_index,
            "at": self.at,
            "cause": self.cause,
            "suspect": self.suspect,
        }


@dataclass(frozen=True)
class DynamicsWindow:
    """One routing-dynamics event as plain interval data."""

    kind: str
    prefix: object
    start: float
    end: float

    def covers(self, destination, start: float, end: float) -> bool:
        """Did this event overlap ``[start, end]`` for ``destination``?"""
        return (self.prefix.contains(destination)
                and self.start <= end and start <= self.end)


def dynamics_windows(events) -> list[DynamicsWindow]:
    """Flatten scheduled dynamics events into comparable intervals."""
    from repro.sim.dynamics import (
        ForwardingLoopWindow,
        RouteChange,
        RouteWithdrawal,
    )

    windows: list[DynamicsWindow] = []
    for event in events:
        if isinstance(event, RouteChange):
            end = (float("inf") if event.duration is None
                   else event.at_time + event.duration)
            windows.append(DynamicsWindow("route-change", event.prefix,
                                          event.at_time, end))
        elif isinstance(event, RouteWithdrawal):
            windows.append(DynamicsWindow("withdrawal", event.prefix,
                                          event.at_time, event.end))
        elif isinstance(event, ForwardingLoopWindow):
            windows.append(DynamicsWindow("forwarding-loop", event.prefix,
                                          event.start, event.end))
    return windows


def fault_windows(internet_config) -> list[tuple[float, float]]:
    """Intervals during which *injected* faults pressed the network.

    A non-inert static profile covers the whole run; scheduled phases
    cover ``[start_i, start_{i+1})`` for every non-inert phase.  Plain
    interval data derived from the picklable config, so every shard
    computes the identical calendar.
    """
    intervals: list[tuple[float, float]] = []
    profile = getattr(internet_config, "fault_profile", None)
    if profile is not None and not profile.inert:
        intervals.append((0.0, float("inf")))
    phases = getattr(internet_config, "fault_phases", None) or ()
    ordered = sorted(phases, key=lambda pair: pair[0])
    for index, (start, profile) in enumerate(ordered):
        if profile.inert:
            continue
        end = (ordered[index + 1][0] if index + 1 < len(ordered)
               else float("inf"))
        intervals.append((start, end))
    return intervals


class OnsetDetector:
    """Stream detector for one vantage's routes.

    ``ground`` is the in-sim reality
    (:func:`repro.analysis.fault_sensitivity.ground_truth_from_topology`),
    ``dynamics`` the flattened routing-event intervals, ``faults`` the
    injected-fault intervals, ``warmup`` how many leading rounds per
    stream seed the baseline instead of alerting.
    """

    def __init__(self, vantage: int, client: str, ground: GroundTruth,
                 dynamics: list[DynamicsWindow],
                 faults: list[tuple[float, float]],
                 warmup: int, window_depth: int) -> None:
        self.vantage = vantage
        self.client = client
        self.ground = ground
        self.dynamics = dynamics
        self.faults = faults
        self.warmup = warmup
        self.window_depth = window_depth
        #: (destination, tool) -> RollingWindow (insertion = feed order).
        self.windows: dict[tuple[str, str], RollingWindow] = {}
        self._baselines: dict[tuple[str, str], ToolCensus] = {}
        self._prev: dict[tuple[str, str], MeasuredRoute] = {}
        self.onsets: list[Onset] = []

    # ------------------------------------------------------------------
    def _fault_active(self, start: float, end: float) -> bool:
        return any(s <= end and start <= e for s, e in self.faults)

    def _merge_baseline(self, baseline: ToolCensus,
                        census: ToolCensus) -> None:
        baseline.routes += census.routes
        for sig, count in census.loops.items():
            baseline.loops[sig] = baseline.loops.get(sig, 0) + count
        for sig, count in census.cycles.items():
            baseline.cycles[sig] = baseline.cycles.get(sig, 0) + count
        for key, middles in census.diamonds.items():
            baseline.diamonds[key] = (
                baseline.diamonds.get(key, frozenset()) | middles)
        for sig, count in census.stars.items():
            baseline.stars[sig] = baseline.stars.get(sig, 0) + count

    def _classify(self, family: str, onset_census: ToolCensus,
                  baseline: ToolCensus, start: float,
                  end: float) -> str:
        """Label one onset signature through the attribution split."""
        attribution = attribute_tool(baseline, onset_census, self.ground)
        split = attribution.family(family)
        if split.real > 0:
            return "real-routing"
        if split.fault_artifacts > 0 and self._fault_active(start, end):
            return "fault-artifact"
        return "probe-artifact"

    # ------------------------------------------------------------------
    def feed(self, route: MeasuredRoute) -> list[Onset]:
        """Fold one route in, in round order; returns new onsets."""
        key = (str(route.destination), route.tool)
        window = self.windows.get(key)
        if window is None:
            window = self.windows[key] = RollingWindow(
                self.vantage, self.client, key[0], key[1],
                self.window_depth)
            self._baselines[key] = ToolCensus(tool=route.tool)
        previous = self._prev.get(key)
        entry = window.push(route)
        baseline = self._baselines[key]
        produced: list[Onset] = []
        start = route.started_at
        end = route.started_at + route.trace_duration
        if route.round_index < self.warmup:
            self._merge_baseline(baseline, entry.census)
        else:
            produced = self._detect(key, route, entry, previous, baseline,
                                    start, end)
        self._prev[key] = route
        self.onsets.extend(produced)
        return produced

    def _detect(self, key, route, entry, previous, baseline,
                start, end) -> list[Onset]:
        produced: list[Onset] = []
        destination, tool = key
        if previous is not None:
            cur_sig = entry.signature
            prev_sig = route_signature(previous)
            if cur_sig != prev_sig:
                produced.append(self._route_change_onset(
                    route, previous, cur_sig, prev_sig, start, end))
        prev_census = (None if previous is None
                       else compute_tool_census(tool, [previous]))
        census = entry.census
        for family, observed in (("loop", census.loops),
                                 ("cycle", census.cycles),
                                 ("mid-route-star", census.stars)):
            prev_keys = set() if prev_census is None else set(
                {"loop": prev_census.loops,
                 "cycle": prev_census.cycles,
                 "mid-route-star": prev_census.stars}[family])
            for sig in observed:
                if sig in prev_keys:
                    continue  # present last round too: not an onset
                produced.append(self._anomaly_onset(
                    route, family, sig, baseline, start, end))
        return produced

    def _route_change_onset(self, route, previous, cur_sig, prev_sig,
                            start, end) -> Onset:
        overlap_start = previous.started_at
        real = any(w.covers(route.destination, overlap_start, end)
                   for w in self.dynamics)
        if real:
            cause = "real-routing"
        elif self._fault_active(overlap_start, end):
            cause = "fault-artifact"
        else:
            cause = "probe-artifact"
        suspect = ""
        for prev_hop, cur_hop in zip(prev_sig, cur_sig):
            if prev_hop != cur_hop:
                suspect = cur_hop if cur_hop != "*" else prev_hop
                break
        else:
            longer = cur_sig if len(cur_sig) > len(prev_sig) else prev_sig
            shorter = min(len(cur_sig), len(prev_sig))
            if len(longer) > shorter:
                suspect = longer[shorter]
        if suspect == "*":
            suspect = ""
        return Onset(
            vantage=self.vantage, client=self.client,
            destination=str(route.destination), tool=route.tool,
            family="route-change",
            signature="->".join(cur_sig), round_index=route.round_index,
            at=start, cause=cause, suspect=suspect)

    def _anomaly_onset(self, route, family, sig, baseline, start,
                       end) -> Onset:
        tool = route.tool
        onset_census = ToolCensus(tool=tool, routes=1)
        if family == "loop":
            onset_census.loops[sig] = 1
            text = f"loop {sig.address}@{sig.destination}"
            suspect = str(sig.address)
        elif family == "cycle":
            onset_census.cycles[sig] = 1
            text = f"cycle {sig.address}@{sig.destination}"
            suspect = str(sig.address)
        else:
            onset_census.stars[sig] = 1
            text = f"star ttl{sig.ttl}@{sig.destination}"
            suspect = self._star_suspect(route, sig)
        cause = self._classify(
            {"loop": "loops", "cycle": "cycles",
             "mid-route-star": "mid-route stars"}[family],
            onset_census, baseline, start, end)
        return Onset(
            vantage=self.vantage, client=self.client,
            destination=str(route.destination), tool=tool, family=family,
            signature=text, round_index=route.round_index, at=start,
            cause=cause, suspect=suspect)

    @staticmethod
    def _star_suspect(route: MeasuredRoute, sig: StarSignature) -> str:
        """The deepest answering hop above the star (the throttler's
        neighbour — the best address a star can point at)."""
        best = ""
        for hop in route.hops:
            if hop.ttl >= sig.ttl:
                break
            if hop.address is not None:
                best = str(hop.address)
        return best
