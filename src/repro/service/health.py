"""Service health: the operator's status snapshot and alert metrics.

:func:`health_snapshot` condenses a finalized
:class:`repro.service.result.MonitorResult` into the dict an operator
(or the CLI) reads first: how long the simulated run covered, how many
targets and rounds it probed, how the onset stream split by cause, and
what the alert pipeline kept versus suppressed.  ``status`` grades the
run — ``alerting`` when alerts were emitted, ``degraded`` when onsets
fired but every one was suppressed or held, ``ok`` otherwise.

:func:`publish_alert_metrics` exposes the same accounting through the
PR 6 registry conventions as *process-scope* families folded into the
fleet's metrics snapshot — advisory numbers, outside the deterministic
signature, exactly like the engine's own process-scope metrics.
"""

from __future__ import annotations


def health_snapshot(result) -> dict:
    """The operator-facing status dict (not part of the signature)."""
    fleet = result.fleet
    sim_end = 0.0
    rounds = 0
    for vantage in fleet.vantages:
        for route in vantage.result.routes:
            sim_end = max(sim_end, route.started_at + route.trace_duration)
        rounds += sum(1 for r in vantage.result.routes
                      if r.tool.startswith("paris"))
    counters = result.alerts.counters if result.alerts else {}
    emitted = counters.get("alerts", 0)
    onsets = counters.get("onsets", 0)
    if emitted:
        status = "alerting"
    elif onsets:
        status = "degraded"
    else:
        status = "ok"
    per_vantage = [
        {
            "index": v.index,
            "name": v.name,
            "targets": len(v.destinations),
            "routes": len(v.result.routes),
            "probes_sent": v.result.probes_sent,
            "responses_received": v.result.responses_received,
        }
        for v in fleet.vantages
    ]
    return {
        "status": status,
        "sim_duration": sim_end,
        "targets": len(fleet.destinations),
        "vantages": len(fleet.vantages),
        "target_rounds": rounds,
        "windows": len(result.windows),
        "onsets": onsets,
        "onsets_by_cause": counters.get("by_cause", {}),
        "onsets_by_family": counters.get("by_family", {}),
        "alerts": emitted,
        "suppressed": counters.get("suppressed", 0),
        "held": counters.get("held", 0),
        "groups": counters.get("groups", 0),
        "per_vantage": per_vantage,
    }


def publish_alert_metrics(result) -> None:
    """Fold alert-pipeline accounting into the fleet metrics snapshot.

    Runs post-merge on the coordinator, so the families are
    process-scope: they describe *this* pipeline execution, not any
    per-client stream, and stay outside the deterministic signature.
    No-op when the run had metrics disabled.
    """
    if result.fleet.metrics is None or result.alerts is None:
        return
    from repro.obs.registry import (
        SCOPE_PROCESS,
        MetricsRegistry,
        MetricsSnapshot,
    )

    registry = MetricsRegistry()
    counters = result.alerts.counters
    alerts = registry.counter(
        "repro_monitor_alerts_total",
        "Alerts emitted by the monitor pipeline, per severity.",
        ("severity",), scope=SCOPE_PROCESS)
    for alert in result.alerts.alerts:
        alerts.labels(str(alert.severity)).inc()
    registry.counter(
        "repro_monitor_alerts_suppressed_total",
        "Onsets folded into an existing alert's suppression window.",
        (), scope=SCOPE_PROCESS).inc(counters.get("suppressed", 0))
    registry.counter(
        "repro_monitor_alerts_held_total",
        "Onsets held back by an adaptive flapping threshold.",
        (), scope=SCOPE_PROCESS).inc(counters.get("held", 0))
    registry.gauge(
        "repro_monitor_alert_groups",
        "Cross-vantage incident groups in the finalized alert log.",
        (), scope=SCOPE_PROCESS).set(counters.get("groups", 0))
    result.fleet.metrics = MetricsSnapshot.merge(
        [result.fleet.metrics, registry.snapshot()])
