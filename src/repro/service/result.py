"""The monitor run's product, and the merge that defines determinism.

A :class:`MonitorResult` layers the service artifacts over the fleet
result: the merged rolling windows (canonical dict form), the labeled
onset stream, and — once finalized — the alert log and health
snapshot.  Sharded execution produces one *partial* result per shard
(``alerts is None``); :meth:`MonitorResult.merge` recombines them,
then runs the alert pipeline and health snapshot over the merged
stream.  The single-process path calls ``merge([the_one_part])`` too,
so both modes finalize through literally the same code — half of why
:meth:`signature` comes out byte-identical.

The signature covers the fleet result, windows, onsets, and alert log;
metrics and the health snapshot stay outside it, matching the fleet
convention that observability never enters the artifacts it observes.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field
from typing import Iterable, Optional

from repro.errors import CampaignError
from repro.service.alerts import AlertLog, build_alert_log
from repro.service.config import MonitorConfig
from repro.service.detect import Onset
from repro.service.health import health_snapshot, publish_alert_metrics
from repro.vantage.campaign import FleetResult


@dataclass
class MonitorResult:
    """Everything one monitor run produced."""

    config: MonitorConfig
    fleet: FleetResult
    #: Canonical window dicts, sorted by (vantage, destination, tool).
    windows: list = field(default_factory=list)
    #: Labeled onsets, sorted by (vantage, at, destination, tool,
    #: family, signature).
    onsets: list = field(default_factory=list)
    #: None on a partial (per-shard) result; set by :meth:`merge`.
    alerts: Optional[AlertLog] = None
    #: Operational snapshot (outside the signature, like metrics).
    health: Optional[dict] = None
    #: :class:`repro.runtime.degradation.DegradationReport` stamped by a
    #: supervised execution; outside the signature like ``health``.
    degradation: object = None

    @classmethod
    def merge(cls, parts: Iterable["MonitorResult"]) -> "MonitorResult":
        """Recombine per-shard partials and finalize the pipeline."""
        parts = list(parts)
        if not parts:
            raise CampaignError("nothing to merge")
        merged = cls(
            config=parts[0].config,
            fleet=FleetResult.merge([p.fleet for p in parts]),
        )
        for part in parts:
            merged.windows.extend(part.windows)
            merged.onsets.extend(part.onsets)
        merged.windows.sort(key=lambda w: (
            w["vantage"], w["destination"], w["tool"]))
        merged.onsets.sort(key=lambda o: (
            o.vantage, o.at, o.destination, o.tool, o.family, o.signature))
        merged.alerts = build_alert_log(merged.onsets, merged.config)
        merged.health = health_snapshot(merged)
        publish_alert_metrics(merged)
        reports = [p.degradation for p in parts
                   if p.degradation is not None]
        if reports:
            from repro.runtime.degradation import merge_reports

            merged.degradation = merge_reports(reports)
        return merged

    # -- canonical serialization ----------------------------------------
    def to_dict(self) -> dict:
        """Canonical JSON-ready form (the signature's payload)."""
        return {
            "fleet": self.fleet.to_dict(),
            "windows": self.windows,
            "onsets": [o.to_dict() for o in self.onsets],
            "alerts": self.alerts.to_dict() if self.alerts else None,
        }

    def signature(self) -> str:
        """SHA-256 over the canonical serialization.

        The monitor determinism contract in one comparison: a sharded
        run's merged signature equals the single-process run's.
        """
        payload = json.dumps(self.to_dict(), sort_keys=True,
                             separators=(",", ":"))
        return hashlib.sha256(payload.encode("utf-8")).hexdigest()
