"""Monitor service configuration.

:class:`MonitorConfig` bounds a service run for CI (simulated-duration
and per-target round caps), sets the per-target probing cadence, and
carries the analysis/alerting knobs.  It embeds a
:class:`repro.vantage.campaign.FleetConfig` for everything the fleet
layer already knows (workers, timeout policy, window, assignment); the
fleet config's ``rounds`` field is ignored — the schedule decides how
many times each target is probed.

Plain picklable data throughout, like every other config in the stack:
a :class:`MonitorConfig` crosses shard process boundaries unchanged,
which is half of the determinism story.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.errors import CampaignError
from repro.vantage.campaign import FleetConfig


@dataclass
class MonitorConfig:
    """Knobs for one monitor run (all simulated-time units in seconds)."""

    #: Simulated horizon: no target round is *scheduled* at or past
    #: this instant (traces started before it may finish after).
    duration: float = 180.0
    #: Per-target probing periods, assigned round-robin over the global
    #: destination index — target ``d`` is re-probed every
    #: ``periods[d % len(periods)]`` seconds from t=0.
    periods: tuple[float, ...] = (30.0, 45.0, 60.0)
    #: Cap on rounds per target (None = whatever fits ``duration``);
    #: the CI bound for smoke runs.
    max_rounds: Optional[int] = None
    #: Leading rounds per target that seed the baseline window; onset
    #: detection starts on the first round after the warmup.
    warmup_rounds: int = 1
    #: Rolling-window depth: observations kept per (vantage,
    #: destination, tool) stream.
    window_depth: int = 5
    #: Alerting — repeats of one fingerprint within this many simulated
    #: seconds are suppressed onto the original alert.
    suppression_window: float = 90.0
    #: Alerts per (vantage, destination) before the target counts as
    #: flapping and its threshold adapts.
    flap_threshold: int = 3
    #: Consecutive onsets a flapping target must produce per fingerprint
    #: before another alert is emitted.
    flap_penalty: int = 2
    #: Alerts within this window sharing a suspect address group into
    #: one cross-vantage incident.
    group_window: float = 45.0
    #: The fleet-layer execution knobs (``rounds`` ignored).
    fleet: FleetConfig = field(default_factory=FleetConfig)

    def __post_init__(self) -> None:
        if self.duration <= 0.0:
            raise CampaignError(
                f"monitor duration must be positive: {self.duration}")
        if not self.periods:
            raise CampaignError("monitor needs at least one period")
        for period in self.periods:
            if period <= 0.0:
                raise CampaignError(
                    f"periods must be positive: {self.periods}")
        self.periods = tuple(float(p) for p in self.periods)
        if self.max_rounds is not None and self.max_rounds < 1:
            raise CampaignError(
                f"max_rounds must be >= 1: {self.max_rounds}")
        if self.warmup_rounds < 1:
            raise CampaignError(
                f"warmup_rounds must be >= 1: {self.warmup_rounds}")
        if self.window_depth < 2:
            raise CampaignError(
                f"window_depth must be >= 2: {self.window_depth}")
        if self.suppression_window < 0.0:
            raise CampaignError(
                f"suppression_window must be >= 0: "
                f"{self.suppression_window}")
        if self.flap_threshold < 1:
            raise CampaignError(
                f"flap_threshold must be >= 1: {self.flap_threshold}")
        if self.flap_penalty < 1:
            raise CampaignError(
                f"flap_penalty must be >= 1: {self.flap_penalty}")
        if self.group_window < 0.0:
            raise CampaignError(
                f"group_window must be >= 0: {self.group_window}")

    def describe(self) -> str:
        """A one-line inventory for reports and CLI output."""
        cap = "" if self.max_rounds is None else \
            f", <= {self.max_rounds} round(s)/target"
        return (f"monitor: {self.duration:g}s horizon, periods "
                f"{tuple(f'{p:g}' for p in self.periods)}{cap}, "
                f"warmup {self.warmup_rounds}, window "
                f"{self.window_depth}")
