"""The monitoring service: recurring campaigns on one simulated clock.

Everything below this package is batch — build a campaign, run it,
read the result.  The paper's payoff, though, is sharpest when routes
are watched *over time*: Paris traceroute's forensics are what let a
monitor distinguish a real routing incident from an anomaly its own
probing (or a rate-limiting router) manufactured.  This package is
that top layer:

``config`` / ``schedule``
    :class:`MonitorConfig` and the per-target probe calendars — each
    destination re-probed on its own period, all on one clock.

``orchestrator``
    :class:`MonitorService` plus :func:`run_monitor` /
    :func:`run_monitor_sharded`: recurring-campaign execution where
    one :class:`repro.engine.scheduler.ProbeScheduler` drives every
    round of every target (lanes are reused across rounds — no
    per-round re-setup), over an evolving internet (routing dynamics
    plus scheduled :class:`repro.faults.ScheduledProfile` phases).

``windows`` / ``detect``
    The streaming analysis layer: per-(vantage, destination) rolling
    windows and incremental onset detection that labels every onset —
    real routing vs. fault-manufactured vs. probe-design artifact —
    through :mod:`repro.core.attribution` *before* it can alert.

``alerts`` / ``health``
    The alerting pipeline (fingerprint dedup, suppression windows,
    adaptive per-target thresholds, severity, cross-vantage grouping)
    and the service health snapshot + metrics.

The determinism contract extends the fleet's: a sharded monitor run's
merged rolling windows and alert log are byte-identical to the
single-process run (``MonitorResult.signature()`` checks it in one
comparison).
"""

from repro.service.alerts import AlertLog, build_alert_log
from repro.service.config import MonitorConfig
from repro.service.detect import Onset, OnsetDetector
from repro.service.health import health_snapshot
from repro.service.orchestrator import (
    MonitorService,
    MonitorShardTask,
    run_monitor,
    run_monitor_sharded,
)
from repro.service.result import MonitorResult
from repro.service.schedule import TargetPlan, build_schedule
from repro.service.windows import RollingWindow

__all__ = [
    "AlertLog",
    "MonitorConfig",
    "MonitorResult",
    "MonitorService",
    "MonitorShardTask",
    "Onset",
    "OnsetDetector",
    "RollingWindow",
    "TargetPlan",
    "build_alert_log",
    "build_schedule",
    "health_snapshot",
    "run_monitor",
    "run_monitor_sharded",
]
