"""Recurring-campaign orchestration on one simulated clock.

The monitor's executor is a :class:`repro.vantage.campaign.FleetCampaign`
subclass whose lanes are *calendars* instead of round barriers: each
vantage worker's lane holds every scheduled probe of its target share,
ordered by scheduled instant, with the instant stamped on the spec as
:attr:`repro.engine.scheduler.TraceSpec.not_before`.  One
:class:`repro.engine.scheduler.ProbeScheduler` drives every round of
every target — lanes are set up once and reused across rounds, and a
lane reaching a future round early simply parks on its own wake-up
event.  There is deliberately no cross-lane synchronization, so every
vantage's timeline stays a pure function of its own lanes and the
topology seed — the property the sharded mode inherits unchanged from
the fleet layer.

Execution mirrors :mod:`repro.vantage.sharding`:
:class:`MonitorShardTask` is the picklable work unit (each shard
rebuilds a seeded topology replica, runs only its vantages, streams
its routes through the onset detector), :func:`run_monitor` is the
single-process reference, :func:`run_monitor_sharded` the partitioned
one, and both finalize through
:meth:`repro.service.result.MonitorResult.merge` — literally the same
code path, which is what makes the byte-identity contract testable.
"""

from __future__ import annotations

import multiprocessing
from dataclasses import dataclass, field
from typing import Optional, Sequence

from repro.analysis.fault_sensitivity import ground_truth_from_topology
from repro.engine.scheduler import ProbeScheduler, TraceSpec
from repro.measurement.destinations import (
    select_pingable_destinations,
    split_among_workers,
)
from repro.service.config import MonitorConfig
from repro.service.detect import (
    OnsetDetector,
    dynamics_windows,
    fault_windows,
)
from repro.service.result import MonitorResult
from repro.service.schedule import TargetPlan, build_schedule
from repro.topology.internet import InternetConfig, generate_internet
from repro.vantage.campaign import FleetCampaign, FleetResult


class _MonitorCampaign(FleetCampaign):
    """A fleet campaign driven by per-target calendars.

    Reuses all the fleet plumbing — per-vantage sockets/tools/policies,
    deterministic trace ordinals, result assembly — and replaces only
    lane construction: instead of ``rounds`` uniform passes, each
    worker's lane is its share's schedule flattened to (instant,
    position) order with ``not_before`` pacing.
    """

    def __init__(self, *args, plans: Sequence[TargetPlan], **kwargs):
        super().__init__(*args, **kwargs)
        self._plans = {plan.destination: plan for plan in plans}

    def run(self) -> FleetResult:
        """Run every owned vantage's calendar; per-vantage results."""
        cfg = self.config
        scheduler = ProbeScheduler(
            self.network,
            self._fleet.sources[0],
            window=cfg.window,
            socket=self._fleet.sockets[0],
        )
        for slot, v in enumerate(self.vantage_ids):
            socket = self._fleet.sockets[slot]
            shares = split_among_workers(self._assigned[v], cfg.workers)
            self._offsets_for(v, shares)
            for worker, share in enumerate(shares):
                if not share:
                    continue
                # The worker's calendar: every scheduled probe of every
                # owned target, ordered by (instant, position) — ties
                # resolve by share position, identically in every mode.
                entries = sorted(
                    (plan_time, position, round_index, destination)
                    for position, destination in enumerate(share)
                    for round_index, plan_time
                    in enumerate(self._plans[destination].times)
                )
                specs: list = []
                for plan_time, position, round_index, destination in entries:
                    paris_builder, classic_builder = self._builders_for(
                        v, round_index, worker, position, destination)
                    specs.append(TraceSpec(
                        self._paris[v], destination, paris_builder,
                        meta=(v, round_index), not_before=plan_time))
                    specs.append(TraceSpec(
                        self._classic[v], destination, classic_builder,
                        meta=(v, round_index), not_before=plan_time))
                scheduler.add_lane(
                    specs,
                    inter_trace_delay=cfg.inter_trace_delay,
                    socket=socket,
                    timeout_policy=self._policies[v],
                    horizon_hints=self._hints[v],
                )
        outcomes = scheduler.run()
        result = self._assemble(outcomes)
        self._attach_observability(result)
        return result


@dataclass
class MonitorShardTask:
    """Everything one monitor shard needs to rebuild its world and run.

    Picklable by construction, like
    :class:`repro.vantage.sharding.FleetShardTask`: plain configs, plain
    ints.  The fault phases and dynamics calendar travel inside
    ``internet``, so every shard replica evolves identically.
    """

    internet: InternetConfig
    monitor: MonitorConfig = field(default_factory=MonitorConfig)
    vantage_ids: list = field(default_factory=list)
    #: Pingable pre-screen truncation (None keeps all).
    max_destinations: Optional[int] = None
    #: Seed of the destination shuffle; defaults to the fleet seed.
    destination_seed: Optional[int] = None
    metrics: bool = False
    #: Ring capacity for a probe tracer; 0 disables tracing.
    trace_capacity: int = 0


def run_monitor_shard(task: MonitorShardTask) -> MonitorResult:
    """Run one shard to completion (the process-pool work function).

    Returns a *partial* :class:`MonitorResult` (``alerts is None``):
    windows and onsets for the shard's vantages only.  The alert
    pipeline runs post-merge on the coordinator.
    """
    topology = generate_internet(task.internet)
    seed = (task.destination_seed if task.destination_seed is not None
            else task.monitor.fleet.seed)
    destinations = select_pingable_destinations(
        topology.network, topology.source,
        topology.destination_addresses,
        count=task.max_destinations, seed=seed)
    # Observability installs after the pingable pre-screen, exactly as
    # in :func:`repro.vantage.sharding.materialize_shard` and for the
    # same reason: pre-screen probes replay in every replica.
    if task.metrics:
        from repro.obs.registry import MetricsRegistry

        topology.network.metrics = MetricsRegistry()
    if task.trace_capacity > 0:
        from repro.obs.tracing import ProbeTracer

        topology.network.tracer = ProbeTracer(capacity=task.trace_capacity)
    plans = build_schedule(destinations, task.monitor)
    vantage_ids = (task.vantage_ids
                   or list(range(len(topology.sources))))
    campaign = _MonitorCampaign(
        topology.network, topology.sources, destinations,
        config=task.monitor.fleet, vantage_ids=vantage_ids,
        plans=plans)
    fleet_result = campaign.run()
    return _analyze_shard(task, topology, fleet_result)


def _analyze_shard(task: MonitorShardTask, topology,
                   fleet_result: FleetResult) -> MonitorResult:
    """Stream the shard's routes through detection; build its partial."""
    ground = ground_truth_from_topology(topology)
    dynamics = dynamics_windows(topology.dynamics)
    faults = fault_windows(task.internet)
    monitor = task.monitor
    part = MonitorResult(config=monitor, fleet=fleet_result)
    onset_tallies: dict[tuple[str, str, str], int] = {}
    target_counts: dict[str, int] = {}
    for vantage in fleet_result.vantages:
        detector = OnsetDetector(
            vantage=vantage.index, client=str(vantage.address),
            ground=ground, dynamics=dynamics, faults=faults,
            warmup=monitor.warmup_rounds,
            window_depth=monitor.window_depth)
        # Route order is the canonical fleet order (chronological per
        # worker), so each (destination, tool) stream arrives in round
        # order and the onset list is a pure function of the routes.
        for route in vantage.result.routes:
            detector.feed(route)
        part.windows.extend(
            window.to_dict() for window in detector.windows.values())
        part.onsets.extend(detector.onsets)
        client = str(vantage.address)
        target_counts[client] = len(vantage.destinations)
        for onset in detector.onsets:
            key = (client, onset.family, onset.cause)
            onset_tallies[key] = onset_tallies.get(key, 0) + 1
    _publish_shard_metrics(topology.network, fleet_result,
                           onset_tallies, target_counts)
    part.windows.sort(key=lambda w: (
        w["vantage"], w["destination"], w["tool"]))
    part.onsets.sort(key=lambda o: (
        o.vantage, o.at, o.destination, o.tool, o.family, o.signature))
    return part


def _publish_shard_metrics(network, fleet_result, onset_tallies,
                           target_counts) -> None:
    """Client-scope onset metrics: disjoint across shards, so the
    merged snapshot's deterministic view matches single-process."""
    from repro.obs.registry import active_registry

    registry = active_registry(network)
    if registry is None:
        return
    onsets = registry.counter(
        "repro_monitor_onsets_total",
        "Detected onsets per client, family, and attributed cause.",
        ("client", "family", "cause"))
    for (client, family, cause), count in sorted(onset_tallies.items()):
        onsets.labels(client, family, cause).inc(count)
    targets = registry.gauge(
        "repro_monitor_targets",
        "Monitored destinations per client.",
        ("client",))
    for client, count in sorted(target_counts.items()):
        targets.labels(client).set(count)
    fleet_result.metrics = registry.snapshot()


def run_monitor(
    internet: InternetConfig,
    monitor: MonitorConfig | None = None,
    max_destinations: Optional[int] = None,
    destination_seed: Optional[int] = None,
    metrics: bool = False,
    trace_capacity: int = 0,
) -> MonitorResult:
    """Single-process reference execution: all vantages, one scheduler."""
    monitor = monitor or MonitorConfig()
    task = MonitorShardTask(
        internet=internet, monitor=monitor,
        vantage_ids=list(range(internet.n_vantages)),
        max_destinations=max_destinations,
        destination_seed=destination_seed,
        metrics=metrics, trace_capacity=trace_capacity)
    return MonitorResult.merge([run_monitor_shard(task)])


def run_monitor_sharded(
    internet: InternetConfig,
    monitor: MonitorConfig | None = None,
    shards: int = 2,
    processes: bool = False,
    max_destinations: Optional[int] = None,
    destination_seed: Optional[int] = None,
    metrics: bool = False,
    trace_capacity: int = 0,
    runtime=None,
    journal_path=None,
) -> MonitorResult:
    """Partition the monitor's vantages over ``shards`` replicas, merge,
    and finalize the alert pipeline over the merged onset stream.

    ``runtime`` (a :class:`repro.runtime.RuntimeOptions`) or
    ``journal_path`` switches from the bare pool to the supervised
    executor — see :func:`run_monitor_supervised`.
    """
    from repro.vantage.sharding import plan_shards

    monitor = monitor or MonitorConfig()
    tasks = [
        MonitorShardTask(
            internet=internet, monitor=monitor, vantage_ids=vantage_ids,
            max_destinations=max_destinations,
            destination_seed=destination_seed,
            metrics=metrics, trace_capacity=trace_capacity)
        for vantage_ids in plan_shards(internet.n_vantages, shards)
    ]
    if runtime is not None or journal_path is not None:
        return run_monitor_supervised(
            tasks, processes=processes, runtime=runtime,
            journal_path=journal_path)
    if processes and len(tasks) > 1:
        methods = multiprocessing.get_all_start_methods()
        context = multiprocessing.get_context(
            "fork" if "fork" in methods else "spawn")
        with context.Pool(processes=len(tasks)) as pool:
            parts = pool.map(run_monitor_shard, tasks)
    else:
        parts = [run_monitor_shard(task) for task in tasks]
    return MonitorResult.merge(parts)


# -- supervised execution -----------------------------------------------
def monitor_shard_specs(tasks: Sequence[MonitorShardTask]) -> list:
    """Wrap monitor shard tasks as supervisor shard specs (stable keys)."""
    from repro.runtime import ShardSpec

    return [
        ShardSpec(
            key="shard-v" + "-".join(str(v) for v in task.vantage_ids),
            task=task, vantage_ids=list(task.vantage_ids))
        for task in tasks
    ]


def validate_monitor_shard(task: MonitorShardTask,
                           result: MonitorResult) -> None:
    """Reject a partial result that is not ``task``'s vantage share."""
    from repro.errors import CampaignError

    got = sorted(v.index for v in result.fleet.vantages)
    want = sorted(task.vantage_ids)
    if got != want:
        raise CampaignError(
            f"shard result covers vantages {got}, task owns {want}: "
            "refusing to merge a wrong-shard result")


def split_monitor_spec(spec) -> list:
    """Reassign an exhausted monitor shard: one task per vantage."""
    from dataclasses import replace

    from repro.runtime import ShardSpec

    return [
        ShardSpec(
            key=f"{spec.key}/v{vantage_id}",
            task=replace(spec.task, vantage_ids=[vantage_id]),
            vantage_ids=[vantage_id])
        for vantage_id in spec.vantage_ids
    ]


def monitor_run_identity(tasks: Sequence[MonitorShardTask]) -> str:
    """The journal-binding digest of a sharded monitor run."""
    from dataclasses import asdict

    from repro.runtime import run_identity

    first = tasks[0]
    return run_identity({
        "kind": "monitor",
        "internet": asdict(first.internet),
        "monitor": asdict(first.monitor),
        "plan": [list(task.vantage_ids) for task in tasks],
        "max_destinations": first.max_destinations,
        "destination_seed": first.destination_seed,
        "metrics": first.metrics,
        "trace_capacity": first.trace_capacity,
    })


def run_monitor_supervised(
    tasks: Sequence[MonitorShardTask],
    processes: bool = False,
    runtime=None,
    journal_path=None,
    registry=None,
) -> MonitorResult:
    """Run prepared monitor shard tasks under the fault-tolerant
    supervisor, then finalize the alert pipeline over the merge.

    Mirrors :func:`repro.vantage.sharding.run_fleet_supervised`: the
    merged result carries the :class:`repro.runtime.DegradationReport`
    on :attr:`MonitorResult.degradation` and the supervisor's
    ``repro_runtime_*`` series in the fleet metrics snapshot.
    """
    from repro.errors import CampaignError
    from repro.runtime import RunJournal, RuntimeOptions, ShardSupervisor

    if not tasks:
        raise CampaignError("no shard tasks to supervise")
    runtime = runtime or RuntimeOptions()
    journal = None
    if journal_path is not None:
        journal = RunJournal(journal_path, monitor_run_identity(tasks))
    coordinator = registry
    if coordinator is None and tasks[0].metrics:
        from repro.obs.registry import MetricsRegistry

        coordinator = MetricsRegistry()
    supervised = ShardSupervisor(
        monitor_shard_specs(tasks), run_monitor_shard,
        processes=processes, options=runtime,
        validate=validate_monitor_shard, split=split_monitor_spec,
        journal=journal, registry=coordinator).execute()
    merged = MonitorResult.merge(supervised.results)
    merged.degradation = supervised.report
    if coordinator is not None and registry is None:
        from repro.obs.registry import MetricsSnapshot

        snapshots = [s for s in (merged.fleet.metrics,
                                 coordinator.snapshot())
                     if s is not None]
        merged.fleet.metrics = MetricsSnapshot.merge(snapshots)
    return merged


class MonitorService:
    """The operator's facade over one monitored internet.

    Bundles the internet description and the monitor knobs; ``run``
    executes single-process or sharded and always returns a finalized
    :class:`MonitorResult` (alert log, health snapshot, metrics when
    enabled).
    """

    def __init__(
        self,
        internet: InternetConfig,
        monitor: MonitorConfig | None = None,
        max_destinations: Optional[int] = None,
        destination_seed: Optional[int] = None,
        metrics: bool = True,
        trace_capacity: int = 0,
    ) -> None:
        self.internet = internet
        self.monitor = monitor or MonitorConfig()
        self.max_destinations = max_destinations
        self.destination_seed = destination_seed
        self.metrics = metrics
        self.trace_capacity = trace_capacity

    def run(self, shards: int = 1, processes: bool = False,
            runtime=None, journal_path=None) -> MonitorResult:
        """Execute the service; ``shards > 1`` partitions the fleet.

        ``runtime`` / ``journal_path`` engage the supervised executor
        even at ``shards=1`` (one shard, still crash-safe).
        """
        if shards <= 1 and runtime is None and journal_path is None:
            return run_monitor(
                self.internet, self.monitor,
                max_destinations=self.max_destinations,
                destination_seed=self.destination_seed,
                metrics=self.metrics,
                trace_capacity=self.trace_capacity)
        return run_monitor_sharded(
            self.internet, self.monitor, shards=max(shards, 1),
            processes=processes,
            max_destinations=self.max_destinations,
            destination_seed=self.destination_seed,
            metrics=self.metrics,
            trace_capacity=self.trace_capacity,
            runtime=runtime, journal_path=journal_path)
