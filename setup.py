"""Packaging for the Paris traceroute (IMC 2006) reproduction.

Kept as a plain setup.py so environments without PEP 660
editable-wheel support can still ``pip install -e .``.  The version is
read from ``src/repro/_version.py``, the single source of truth.
"""

import os
import re

from setuptools import find_packages, setup


def read_version() -> str:
    here = os.path.dirname(os.path.abspath(__file__))
    with open(os.path.join(here, "src", "repro", "_version.py")) as handle:
        return re.search(r'__version__ = "([^"]+)"', handle.read()).group(1)


setup(
    name="repro-paris-traceroute",
    version=read_version(),
    description=(
        "Reproduction of 'Avoiding traceroute anomalies with Paris "
        "traceroute' (IMC 2006) on a deterministic packet-level simulator"
    ),
    long_description=(
        "Classic and Paris traceroute over a byte-exact simulated "
        "internet: load-balancer anomalies, the Sec. 3/4 measurement "
        "campaign, multipath detection, and an event-driven pipelined "
        "probe engine."
    ),
    long_description_content_type="text/plain",
    author="paper-repo-growth",
    license="MIT",
    python_requires=">=3.10",
    package_dir={"": "src"},
    packages=find_packages(where="src"),
    entry_points={
        "console_scripts": [
            "repro=repro.cli:main",
        ],
    },
    extras_require={
        "test": ["pytest", "pytest-benchmark", "hypothesis"],
    },
    classifiers=[
        "Development Status :: 4 - Beta",
        "Intended Audience :: Science/Research",
        "Programming Language :: Python :: 3",
        "Programming Language :: Python :: 3.10",
        "Programming Language :: Python :: 3.11",
        "Programming Language :: Python :: 3.12",
        "Topic :: System :: Networking :: Monitoring",
    ],
)
