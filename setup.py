"""Setuptools shim for environments without PEP 660 editable-wheel support."""
from setuptools import setup

setup()
